package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/txn"
)

// Concurrent-scaling workload: unlike the paper-shape benchmarks above,
// which replay 1993 hardware on a simulated clock, this one measures
// the implementation's own wall-clock throughput as goroutines are
// added. The device real-sleeps a fixed seek latency per page access
// and the buffer pool is deliberately smaller than the working set, so
// every operation mixes cache hits, capacity misses, and the full
// stack above them (namespace resolve, chunk-index lookup, heap fetch,
// MVCC visibility). The curve then exposes exactly one thing: whether
// the storage stack lets concurrent operations overlap their I/O. A
// pool that holds a global lock across ReadPage serializes every seek
// and scales at ~1x no matter how many goroutines run; the sharded
// pool performs backend I/O outside its locks, so independent misses
// overlap and throughput climbs until the (single) CPU saturates.
const (
	scalingFiles    = 32                     // shared read set
	scalingFileSize = 3 * 4096               // a few chunks per file
	scalingTxBatch  = 64                     // ops per explicit transaction
	scalingBuffers  = 64                     // deliberately < working set
	scalingSeek     = 200 * time.Microsecond // real sleep per page access
)

// slowMem wraps the in-memory device manager with a wall-clock seek:
// every page read or write sleeps scalingSeek before touching the
// store. The sleep happens outside the device mutex, modeling a disk
// that accepts concurrent requests — whether the callers above can
// actually issue them concurrently is what the benchmark measures.
type slowMem struct {
	*device.Mem
}

func (m slowMem) ReadPage(rel device.OID, page uint32, buf []byte) error {
	time.Sleep(scalingSeek)
	return m.Mem.ReadPage(rel, page, buf)
}

func (m slowMem) WritePage(rel device.OID, page uint32, buf []byte) error {
	time.Sleep(scalingSeek)
	return m.Mem.WritePage(rel, page, buf)
}

// Scaling workload names.
const (
	WorkloadRead  = "read-mostly" // ReadFile/Stat/ReadDir over shared files
	WorkloadMixed = "mixed"       // same, plus 1-in-8 private-file writes
	WorkloadWrite = "write-heavy" // every op overwrites a private file and commits
)

// Write-heavy workload constants. The device models a disk whose
// platter sync dominates: each commit must force (data flush + log
// force, each ending in a sync), so a solo committer pays
// 2×scalingSyncLat per transaction. Group commit amortizes those syncs
// over every committer in a batch — this workload is sized so the sync
// is the cost being amortized, which is exactly the effect the paper's
// group-commit discussion targets.
const (
	scalingWriteSeek = 25 * time.Microsecond // per page access, write-heavy device
	scalingSyncLat   = 4 * time.Millisecond  // per Sync, write-heavy device
)

// slowSyncMem is the write-heavy workload's device: modest per-page
// latency, expensive Sync. Sleeps happen outside the store's mutex, so
// a background writer's writebacks overlap foreground work.
type slowSyncMem struct {
	*device.Mem
}

func (m slowSyncMem) ReadPage(rel device.OID, page uint32, buf []byte) error {
	time.Sleep(scalingWriteSeek)
	return m.Mem.ReadPage(rel, page, buf)
}

func (m slowSyncMem) WritePage(rel device.OID, page uint32, buf []byte) error {
	time.Sleep(scalingWriteSeek)
	return m.Mem.WritePage(rel, page, buf)
}

func (m slowSyncMem) Sync() error {
	time.Sleep(scalingSyncLat)
	return m.Mem.Sync()
}

// ScalingPoint is one (workload, goroutines) measurement.
type ScalingPoint struct {
	Workload   string
	Goroutines int
	Ops        int
	Elapsed    time.Duration
	OpsPerSec  float64
	Speedup    float64      // vs the 1-goroutine point of the same workload
	Stats      core.Stats   // post-run contention observables
	Obs        obs.Snapshot // post-run metrics registry (latency histograms)

	// Namespace carries per-shard routing/contention counters; only the
	// metadata-storm workload fills it in.
	Namespace []core.NamespaceShardStats `json:",omitempty"`
}

func scalingPath(i int) string { return fmt.Sprintf("/bench/f%02d", i) }

func scalingPrivPath(g int) string { return fmt.Sprintf("/bench/w%d", g) }

// newScalingDB builds a database over the sleeping device with the
// shared read set (and one private write file per goroutine) already
// committed. The pool is smaller than the read set so the timed region
// takes real capacity misses.
func newScalingDB(workload string, goroutines int) (*core.DB, error) {
	sw := device.NewSwitch()
	opts := core.Options{Buffers: scalingBuffers}
	if workload == WorkloadWrite {
		// Sync-dominated device, background writer on, and a commit
		// window wide enough to absorb a committer cohort — the
		// deployment shape the group-commit pipeline is built for.
		sw.Register(slowSyncMem{device.NewMem(nil, 0)})
		opts.BackgroundWriter = true
		opts.GroupCommitWindow = 2 * time.Millisecond
	} else {
		sw.Register(slowMem{device.NewMem(nil, 0)})
	}
	db, err := core.Open(sw, opts)
	if err != nil {
		return nil, err
	}
	s := db.NewSession("bench")
	if err := s.Mkdir("/bench"); err != nil {
		return nil, err
	}
	data := make([]byte, scalingFileSize)
	for i := range data {
		data[i] = byte(i)
	}
	for i := 0; i < scalingFiles; i++ {
		if err := s.WriteFile(scalingPath(i), data, core.CreateOpts{}); err != nil {
			return nil, err
		}
	}
	for g := 0; g < goroutines; g++ {
		if err := s.WriteFile(scalingPrivPath(g), data[:1024], core.CreateOpts{}); err != nil {
			return nil, err
		}
	}
	// One warm pass so the timed region starts from steady state: hot
	// metadata (catalog, namespace, index roots) settles into the pool
	// and only the data pages keep thrashing.
	for i := 0; i < scalingFiles; i++ {
		if _, err := s.ReadFile(scalingPath(i)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// scalingOp runs the i-th operation of goroutine g inside the
// session's open transaction.
func scalingOp(s *core.Session, workload string, g, i int, buf []byte) error {
	if workload == WorkloadWrite {
		return s.WriteFile(scalingPrivPath(g), buf, core.CreateOpts{})
	}
	if workload == WorkloadMixed && i%8 == 3 {
		return s.WriteFile(scalingPrivPath(g), buf, core.CreateOpts{})
	}
	switch {
	case i%16 == 15:
		_, err := s.ReadDir("/bench")
		return err
	case i%8 == 7:
		_, err := s.Stat(scalingPath((g*7 + i) % scalingFiles))
		return err
	default:
		_, err := s.ReadFile(scalingPath((g*13 + i) % scalingFiles))
		return err
	}
}

// scalingWorker runs opsPerG operations in explicit transactions of
// scalingTxBatch ops each, retrying a batch if it loses a deadlock.
func scalingWorker(db *core.DB, workload string, g, opsPerG int) error {
	s := db.NewSession(fmt.Sprintf("bench-%d", g))
	buf := make([]byte, 1024)
	for i := range buf {
		buf[i] = byte(g)
	}
	for done := 0; done < opsPerG; {
		n := scalingTxBatch
		if workload == WorkloadWrite {
			// One write per transaction: the measurement is commits per
			// second, so the commit force must dominate each op.
			n = 1
		}
		if opsPerG-done < n {
			n = opsPerG - done
		}
		if err := s.Begin(); err != nil {
			return err
		}
		batchErr := func() error {
			for j := 0; j < n; j++ {
				if err := scalingOp(s, workload, g, done+j, buf); err != nil {
					return err
				}
			}
			return nil
		}()
		if batchErr != nil {
			aerr := s.Abort()
			if errors.Is(batchErr, txn.ErrDeadlock) && aerr == nil {
				continue // lost a deadlock: retry the batch
			}
			return errors.Join(batchErr, aerr)
		}
		if err := s.Commit(); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// RunScalingPoint measures one (workload, goroutines) point on a fresh
// database: goroutines × opsPerG operations, wall-clock.
func RunScalingPoint(workload string, goroutines, opsPerG int) (ScalingPoint, error) {
	db, err := newScalingDB(workload, goroutines)
	if err != nil {
		return ScalingPoint{}, err
	}
	defer db.Close()
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = scalingWorker(db, workload, g, opsPerG)
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ScalingPoint{}, err
		}
	}
	ops := goroutines * opsPerG
	db.RefreshObsGauges()
	return ScalingPoint{
		Workload:   workload,
		Goroutines: goroutines,
		Ops:        ops,
		Elapsed:    elapsed,
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		Stats:      db.Stats(),
		Obs:        db.Obs().Snapshot(),
	}, nil
}

// RunScaling measures a workload across goroutine counts, filling in
// each point's speedup relative to the first count (normally 1).
func RunScaling(workload string, goroutines []int, opsPerG int) ([]ScalingPoint, error) {
	points := make([]ScalingPoint, 0, len(goroutines))
	for _, g := range goroutines {
		pt, err := RunScalingPoint(workload, g, opsPerG)
		if err != nil {
			return nil, err
		}
		if len(points) > 0 {
			pt.Speedup = pt.OpsPerSec / points[0].OpsPerSec
		} else {
			pt.Speedup = 1
		}
		points = append(points, pt)
	}
	return points, nil
}
