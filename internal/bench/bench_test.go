package bench

import (
	"testing"
	"time"
)

// smallFile keeps unit tests quick; EXPERIMENTS.md uses the full 25 MB.
const smallFile = 4 * MB

func runCfg(t *testing.T, cfg Config) map[string]time.Duration {
	t.Helper()
	sys, err := BuildSystem(cfg, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	times, err := RunOps(sys, smallFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range AllOps {
		if times[op] <= 0 {
			t.Fatalf("%s: op %s has no cost", cfg, op)
		}
	}
	return times
}

func TestAllConfigsRun(t *testing.T) {
	for _, cfg := range []Config{ConfigInvCS, ConfigNFS, ConfigInvSP, ConfigNFSNoPrest, ConfigLocalFS} {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			t.Parallel()
			runCfg(t, cfg)
		})
	}
}

func TestShapeInversionVsNFS(t *testing.T) {
	inv := runCfg(t, ConfigInvCS)
	nfs := runCfg(t, ConfigNFS)
	sp := runCfg(t, ConfigInvSP)

	// Figure 3 shape: Inversion creation markedly slower than NFS.
	if inv[OpCreate] <= nfs[OpCreate] {
		t.Errorf("create: inversion (%v) should be slower than NFS (%v)", inv[OpCreate], nfs[OpCreate])
	}
	// Figure 6 shape: NFS+NVRAM wins writes.
	for _, op := range []string{OpWriteSeq, OpWriteRandom, OpWriteSingle} {
		if inv[op] <= nfs[op] {
			t.Errorf("%s: inversion (%v) should be slower than NFS+NVRAM (%v)", op, inv[op], nfs[op])
		}
	}
	// Single-process beats client/server everywhere (no network).
	for _, op := range AllOps {
		if sp[op] >= inv[op] {
			t.Errorf("%s: single process (%v) should beat client/server (%v)", op, sp[op], inv[op])
		}
	}
	// Table 3 shape: single-process Inversion beats even NFS on reads.
	for _, op := range []string{OpReadSingle, OpReadSeq, OpReadRandom} {
		if sp[op] >= nfs[op] {
			t.Errorf("%s: single process (%v) should beat remote NFS (%v)", op, sp[op], nfs[op])
		}
	}
	// Table 3 exception: NFS+NVRAM wins random writes even against the
	// single-process configuration ("the important exception is in
	// random write time").
	if sp[OpWriteRandom] <= nfs[OpWriteRandom] {
		t.Errorf("random write: NFS+NVRAM (%v) should beat single process (%v)",
			nfs[OpWriteRandom], sp[OpWriteRandom])
	}
}

func TestNVRAMMattersForWrites(t *testing.T) {
	with := runCfg(t, ConfigNFS)
	without := runCfg(t, ConfigNFSNoPrest)
	if with[OpWriteRandom] >= without[OpWriteRandom] {
		t.Errorf("NVRAM did not help random writes: %v vs %v",
			with[OpWriteRandom], without[OpWriteRandom])
	}
	// And random writes fitting NVRAM show (almost) no degradation over
	// sequential.
	ratio := with[OpWriteRandom].Seconds() / with[OpWriteSeq].Seconds()
	if ratio > 1.2 {
		t.Errorf("NFS random/seq write ratio %.2f, paper shows ~1.0", ratio)
	}
}

func TestLocalComparisonShape(t *testing.T) {
	// [STON93]: local Inversion gets >90%% of the native FS on large
	// sequential transfers and ~70%% on small random transfers. Allow a
	// generous band: sequential ratio must beat random ratio, and both
	// must be within sane bounds.
	sp := runCfg(t, ConfigInvSP)
	local := runCfg(t, ConfigLocalFS)
	seqRatio := local[OpReadSingle].Seconds() / sp[OpReadSingle].Seconds()
	rndRatio := local[OpReadRandom].Seconds() / sp[OpReadRandom].Seconds()
	if seqRatio < rndRatio {
		t.Errorf("sequential ratio (%.2f) should exceed random ratio (%.2f)", seqRatio, rndRatio)
	}
	if seqRatio < 0.5 || seqRatio > 1.05 {
		t.Errorf("sequential local/inversion ratio %.2f out of band", seqRatio)
	}
}

func TestRecoveryBeatsForcedFsck(t *testing.T) {
	res, err := AblateRecovery(DefaultParams(), 10, 4*MB)
	if err != nil {
		t.Fatal(err)
	}
	// "File system recovery is essentially instantaneous": at least an
	// order of magnitude faster than scanning the data.
	if res.SpeedupFactor < 10 {
		t.Fatalf("recovery %.4fs vs fsck %.2fs — only %.1fx",
			res.RecoveryTime.Seconds(), res.FsckTime.Seconds(), res.SpeedupFactor)
	}
	if res.PagesOnDisk == 0 {
		t.Fatal("fsck scanned nothing")
	}
}

func TestRunReport(t *testing.T) {
	rep, err := Run(DefaultParams(), smallFile, []Config{ConfigInvSP, ConfigNFS})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seconds) != 2 {
		t.Fatalf("report has %d configs", len(rep.Seconds))
	}
	for cfg, row := range rep.Seconds {
		for _, op := range AllOps {
			if row[op] <= 0 {
				t.Fatalf("%s %s missing", cfg, op)
			}
		}
	}
}

func TestRunnerSingleOps(t *testing.T) {
	r, err := NewRunner(ConfigInvSP, DefaultParams(), smallFile)
	if err != nil {
		t.Fatal(err)
	}
	// Two creates land in distinct files; later ops share the bench file.
	d1, err := r.RunOp(OpCreate)
	if err != nil || d1 <= 0 {
		t.Fatalf("create 1: %v %v", d1, err)
	}
	d2, err := r.RunOp(OpCreate)
	if err != nil || d2 <= 0 {
		t.Fatalf("create 2: %v %v", d2, err)
	}
	for _, op := range []string{OpReadByte, OpWriteSeq} {
		d, err := r.RunOp(op)
		if err != nil || d <= 0 {
			t.Fatalf("%s: %v %v", op, d, err)
		}
	}
	if _, err := r.RunOp("no-such-op"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestAblateCacheSize(t *testing.T) {
	res, err := AblateCacheSize(DefaultParams(), smallFile)
	if err != nil {
		t.Fatal(err)
	}
	// The larger cache must not be slower on the random-read test.
	if res.Large[OpReadRandom] > res.Small[OpReadRandom] {
		t.Fatalf("300 buffers (%v) slower than 64 (%v)",
			res.Large[OpReadRandom], res.Small[OpReadRandom])
	}
}
