package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/txn"
)

// Metadata-storm workload: pure namespace traffic (create/stat/rename,
// no file data) against a partitioned metadata layer. The hardware
// model is a box with metaSpindles simulated disks, each a single
// request queue (a spindle serves one page at a time — concurrent
// requests to the same disk serialize behind its arm). A relation
// necessarily lives on exactly one device, so with one global naming
// relation every client's metadata I/O funnels through one queue no
// matter how many clients run. Hash-partitioned shards are what break
// that: shard i is bound to spindle i (Options.ShardClasses), so
// concurrent clients' page loads land on different queues and overlap.
// Both shard counts run on the identical simulated hardware — N=1
// simply cannot use more than one of the disks for its namespace.
const (
	metaSpindles = 8                      // simulated metadata disks, both configs
	metaReadLat  = 4 * time.Millisecond   // per page read, timed region only
	metaWriteLat = 20 * time.Microsecond  // per page write, timed region only
	metaBuffers  = 192                    // deliberately ≪ the metadata working set
	metaTxBatch  = 64                     // ops per explicit transaction

	metaDirsPerG      = 8    // private directories per client
	metaEntriesPerDir = 4096 // prepopulated entries per directory
	metaRenameReserve = 32   // entries per dir reserved as rename sources
)

// metaDisk simulates one metadata spindle: an in-memory page store
// behind a single request queue with per-page service times. The
// latency gate is off during prepopulation (building the namespace runs
// at memory speed) and on in the timed region. Reads cost a seek;
// writes model a queued controller and cost little — the measurement
// targets the page loads the namespace working set misses on, not the
// commit-time flush (which both shard counts pay identically).
type metaDisk struct {
	*device.Mem
	class string
	gate  *atomic.Bool
	arm   sync.Mutex // one request at a time, like a disk arm
}

func (m *metaDisk) Class() string { return m.class }

func (m *metaDisk) ReadPage(rel device.OID, page uint32, buf []byte) error {
	if m.gate.Load() {
		m.arm.Lock()
		time.Sleep(metaReadLat)
		m.arm.Unlock()
	}
	return m.Mem.ReadPage(rel, page, buf)
}

func (m *metaDisk) WritePage(rel device.OID, page uint32, buf []byte) error {
	if m.gate.Load() {
		m.arm.Lock()
		time.Sleep(metaWriteLat)
		m.arm.Unlock()
	}
	return m.Mem.WritePage(rel, page, buf)
}

// MetaOptions sizes one metadata-storm measurement.
type MetaOptions struct {
	Shards        int // namespace shard count for this point
	Goroutines    int // concurrent clients
	OpsPerG       int // timed metadata ops per client
	DirsPerG      int // private directories per client (0 = default)
	EntriesPerDir int // prepopulated entries per directory (0 = default)
}

func (o *MetaOptions) fill() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Goroutines <= 0 {
		o.Goroutines = 4
	}
	if o.OpsPerG <= 0 {
		o.OpsPerG = 384
	}
	if o.DirsPerG <= 0 {
		o.DirsPerG = metaDirsPerG
	}
	if o.EntriesPerDir <= 0 {
		o.EntriesPerDir = metaEntriesPerDir
	}
	// The first metaRenameReserve entries per directory are rename
	// sources; lookups stride over the rest, so there must be a rest.
	if o.EntriesPerDir <= metaRenameReserve {
		o.EntriesPerDir = 2 * metaRenameReserve
	}
}

// metaDirPath keeps client directories directly under the root: the
// measured ops are two-component paths, so per-op CPU (which a single
// core serializes regardless of sharding) stays small next to the
// device sleeps the shards exist to overlap.
func metaDirPath(g, d int) string { return fmt.Sprintf("/m%d_%d", g, d) }

// metaEntryName is globally unique across a client's directories so a
// rename into any sibling directory can never collide.
func metaEntryName(d, k int) string { return fmt.Sprintf("e%d_%d", d, k) }

// newMetaDB builds the prepopulated namespace with the device gate off:
// every client gets DirsPerG private directories of EntriesPerDir
// entries each (entries are directories too — a mkdir is the pure
// metadata create, touching only naming/fileatt and their indexes).
func newMetaDB(o MetaOptions) (*core.DB, *atomic.Bool, error) {
	gate := new(atomic.Bool)
	sw := device.NewSwitch()
	// The system device (catalog, archive, log) is plain memory: its
	// traffic is identical at every shard count and would only add noise.
	sw.Register(device.NewMem(nil, 0))
	// The same metaSpindles disks are registered for every shard count;
	// shard i lands on spindle i%metaSpindles, so N=1 concentrates the
	// whole namespace on spindle 0 while N=8 uses all eight.
	classes := make([]string, o.Shards)
	for i := range classes {
		classes[i] = fmt.Sprintf("spindle%d", i%metaSpindles)
	}
	for i := 0; i < metaSpindles; i++ {
		sw.Register(&metaDisk{Mem: device.NewMem(nil, 0), class: fmt.Sprintf("spindle%d", i), gate: gate})
	}
	db, err := core.Open(sw, core.Options{
		Buffers:           metaBuffers,
		NamespaceShards:   o.Shards,
		ShardClasses:      classes,
		GroupCommitWindow: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	s := db.NewSession("bench")
	for g := 0; g < o.Goroutines; g++ {
		for d := 0; d < o.DirsPerG; d++ {
			if err := s.Mkdir(metaDirPath(g, d)); err != nil {
				return nil, nil, err
			}
		}
	}
	// Entries in explicit transactions so prepopulation is not one
	// commit force per mkdir.
	for g := 0; g < o.Goroutines; g++ {
		for d := 0; d < o.DirsPerG; d++ {
			for k := 0; k < o.EntriesPerDir; {
				if err := s.Begin(); err != nil {
					return nil, nil, err
				}
				for j := 0; j < 256 && k < o.EntriesPerDir; j++ {
					if err := s.Mkdir(metaDirPath(g, d) + "/" + metaEntryName(d, k)); err != nil {
						return nil, nil, err
					}
					k++
				}
				if err := s.Commit(); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return db, gate, nil
}

// metaWorker runs one client's op stream: 50% creates, 37.5% stats,
// 12.5% renames (directory-crossing, so at N>1 they regularly cross
// shards) — in explicit transactions of metaTxBatch ops, retrying a
// batch that loses a deadlock. No listings: a ReadDir walks one
// directory, which lives wholly in one shard either way, so it would
// only dilute the create/lookup contrast the shards exist to expose.
func metaWorker(db *core.DB, o MetaOptions, g int) error {
	s := db.NewSession(fmt.Sprintf("meta-%d", g))
	renames := 0
	op := func(i int) error {
		switch {
		case i%8 == 5:
			// Move a reserved prepopulated entry to the next directory
			// over. Each source is used once; the name stays unique.
			j := renames
			renames++
			d := j % o.DirsPerG
			k := (j / o.DirsPerG) % metaRenameReserve
			name := metaEntryName(d, k)
			dst := (d + 1) % o.DirsPerG
			return s.Rename(metaDirPath(g, d)+"/"+name,
				metaDirPath(g, dst)+"/"+name+"x")
		case i%4 != 3:
			return s.Mkdir(metaDirPath(g, (i*5)%o.DirsPerG) + fmt.Sprintf("/c%d", i))
		default:
			// Stride the key so lookups cover the whole directory instead
			// of a cached prefix: the point is a random probe that has to
			// load a leaf and a heap page, not a warm re-read.
			d := (i * 7) % o.DirsPerG
			k := metaRenameReserve + (i*131)%(o.EntriesPerDir-metaRenameReserve)
			_, err := s.Stat(metaDirPath(g, d) + "/" + metaEntryName(d, k))
			return err
		}
	}
	for done := 0; done < o.OpsPerG; {
		n := metaTxBatch
		if o.OpsPerG-done < n {
			n = o.OpsPerG - done
		}
		if err := s.Begin(); err != nil {
			return err
		}
		savedRenames := renames
		batchErr := func() error {
			for j := 0; j < n; j++ {
				if err := op(done + j); err != nil {
					return err
				}
			}
			return nil
		}()
		if batchErr != nil {
			aerr := s.Abort()
			if errors.Is(batchErr, txn.ErrDeadlock) && aerr == nil {
				renames = savedRenames // aborted renames roll back
				continue
			}
			return errors.Join(batchErr, aerr)
		}
		if err := s.Commit(); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// RunMetaPoint measures one (shard count, clients) point on a fresh
// prepopulated database, wall-clock.
func RunMetaPoint(o MetaOptions) (ScalingPoint, error) {
	o.fill()
	db, gate, err := newMetaDB(o)
	if err != nil {
		return ScalingPoint{}, err
	}
	defer db.Close()
	gate.Store(true)
	errs := make([]error, o.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = metaWorker(db, o, g)
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	gate.Store(false) // Close's flush runs at memory speed
	for _, err := range errs {
		if err != nil {
			return ScalingPoint{}, err
		}
	}
	ops := o.Goroutines * o.OpsPerG
	db.RefreshObsGauges()
	return ScalingPoint{
		Workload:   fmt.Sprintf("meta-n%d", o.Shards),
		Goroutines: o.Goroutines,
		Ops:        ops,
		Elapsed:    elapsed,
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		Stats:      db.Stats(),
		Obs:        db.Obs().Snapshot(),
		Namespace:  db.NamespaceStats(),
	}, nil
}

// RunMetaScaling runs the identical op stream once per shard count and
// fills in each point's speedup relative to the first count (normally
// N=1 — so the last point's Speedup is the headline "N=8 over N=1 at
// the same client count" ratio).
func RunMetaScaling(goroutines, opsPerG int, shardCounts []int) ([]ScalingPoint, error) {
	points := make([]ScalingPoint, 0, len(shardCounts))
	for _, n := range shardCounts {
		pt, err := RunMetaPoint(MetaOptions{Shards: n, Goroutines: goroutines, OpsPerG: opsPerG})
		if err != nil {
			return nil, err
		}
		if len(points) > 0 {
			pt.Speedup = pt.OpsPerSec / points[0].OpsPerSec
		} else {
			pt.Speedup = 1
		}
		points = append(points, pt)
	}
	return points, nil
}
