package bench

import (
	"fmt"
	"time"

	"repro/internal/iosim"
)

// Operation identifiers, one per row of the paper's Table 3.
const (
	OpCreate      = "create-25mb"
	OpReadByte    = "read-byte"
	OpWriteByte   = "write-byte"
	OpReadSingle  = "read-1mb-single"
	OpReadSeq     = "read-1mb-seq"
	OpReadRandom  = "read-1mb-random"
	OpWriteSingle = "write-1mb-single"
	OpWriteSeq    = "write-1mb-seq"
	OpWriteRandom = "write-1mb-random"
)

// AllOps lists every benchmark operation in paper order.
var AllOps = []string{
	OpCreate, OpReadSingle, OpReadSeq, OpReadRandom,
	OpWriteSingle, OpWriteSeq, OpWriteRandom, OpReadByte, OpWriteByte,
}

const benchPath = "/benchfile"

// lcg is a small deterministic generator so every system sees the same
// "random" offsets.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 33)
}

// opIsWrite reports whether an operation opens the file for writing.
func opIsWrite(op string) bool {
	switch op {
	case OpWriteByte, OpWriteSingle, OpWriteSeq, OpWriteRandom:
		return true
	default:
		return false
	}
}

// opBody builds the test body for one operation on one system.
func opBody(sys System, op string, fileSize int64, rng *lcg) func() error {
	unit := int64(sys.PageUnit())
	pageOff := func() int64 { return int64(rng.next()%uint64(fileSize/unit)) * unit }
	byteOff := func() int64 { return int64(rng.next() % uint64(fileSize)) }
	pages := TestBytes / int(unit)

	switch op {
	case OpReadByte:
		one := make([]byte, 1)
		return func() error { return sys.TestRead(one, byteOff()) }
	case OpWriteByte:
		one := make([]byte, 1)
		return func() error { return sys.TestWrite(one, byteOff()) }
	case OpReadSingle:
		mb := make([]byte, TestBytes)
		return func() error { return sys.TestSingleRead(mb, 0) }
	case OpWriteSingle:
		mb := make([]byte, TestBytes)
		return func() error { return sys.TestSingleWrite(mb, 0) }
	case OpReadSeq:
		page := make([]byte, unit)
		return func() error {
			for i := 0; i < pages; i++ {
				if err := sys.TestRead(page, int64(i)*unit); err != nil {
					return err
				}
			}
			return nil
		}
	case OpReadRandom:
		page := make([]byte, unit)
		return func() error {
			for i := 0; i < pages; i++ {
				if err := sys.TestRead(page, pageOff()); err != nil {
					return err
				}
			}
			return nil
		}
	case OpWriteSeq:
		page := make([]byte, unit)
		return func() error {
			for i := 0; i < pages; i++ {
				if err := sys.TestWrite(page, int64(i)*unit); err != nil {
					return err
				}
			}
			return nil
		}
	case OpWriteRandom:
		page := make([]byte, unit)
		return func() error {
			for i := 0; i < pages; i++ {
				if err := sys.TestWrite(page, pageOff()); err != nil {
					return err
				}
			}
			return nil
		}
	default:
		return func() error { return fmt.Errorf("bench: unknown op %q", op) }
	}
}

// runOne executes one bracketed test on sys and returns its elapsed
// virtual time.
func runOne(sys System, op string, fileSize int64, rng *lcg, w *iosim.Stopwatch) (time.Duration, error) {
	if err := sys.FlushCaches(); err != nil {
		return 0, err
	}
	if err := sys.WarmMeta(benchPath); err != nil {
		return 0, fmt.Errorf("bench: warm %s on %s: %w", op, sys.Name(), err)
	}
	body := opBody(sys, op, fileSize, rng)
	w.Restart()
	if err := sys.BeginTest(benchPath, opIsWrite(op)); err != nil {
		return 0, fmt.Errorf("bench: begin %s on %s: %w", op, sys.Name(), err)
	}
	if err := body(); err != nil {
		return 0, fmt.Errorf("bench: %s on %s: %w", op, sys.Name(), err)
	}
	if err := sys.EndTest(); err != nil {
		return 0, fmt.Errorf("bench: end %s on %s: %w", op, sys.Name(), err)
	}
	return w.Elapsed(), nil
}

// RunOps runs the paper's benchmark on one system: create the file,
// then each transfer test — caches flushed first, metadata warmed, one
// transaction around the test body. fileSize scales the created file
// (the paper used 25 MB; tests may use less — the 1 MB transfer tests
// need at least 2 MB). It returns elapsed virtual time per operation.
func RunOps(sys System, fileSize int64) (map[string]time.Duration, error) {
	if fileSize < 2*MB {
		return nil, fmt.Errorf("bench: file size %d too small", fileSize)
	}
	res := make(map[string]time.Duration)
	w := iosim.StartWatch(sys.Clock())

	// Create the file (Figure 3).
	w.Restart()
	if err := sys.CreateBulk(benchPath, fileSize); err != nil {
		return nil, fmt.Errorf("bench: create on %s: %w", sys.Name(), err)
	}
	res[OpCreate] = w.Elapsed()

	rng := lcg(1993)
	order := []string{
		OpReadByte, OpWriteByte,
		OpReadSingle, OpReadSeq, OpReadRandom,
		OpWriteSingle, OpWriteSeq, OpWriteRandom,
	}
	for _, op := range order {
		d, err := runOne(sys, op, fileSize, &rng, w)
		if err != nil {
			return nil, err
		}
		res[op] = d
	}
	return res, nil
}

// Runner supports benchmarking one operation at a time (testing.B).
type Runner struct {
	sys      System
	fileSize int64
	rng      lcg
	watch    *iosim.Stopwatch
	seq      int
	created  bool
}

// NewRunner builds a configuration for single-op benchmarking.
func NewRunner(cfg Config, p Params, fileSize int64) (*Runner, error) {
	sys, err := BuildSystem(cfg, p)
	if err != nil {
		return nil, err
	}
	return &Runner{
		sys: sys, fileSize: fileSize, rng: lcg(1993),
		watch: iosim.StartWatch(sys.Clock()),
	}, nil
}

// System exposes the underlying system.
func (r *Runner) System() System { return r.sys }

// RunOp executes one operation and returns its elapsed virtual time.
// OpCreate creates a fresh file each call; every other op lazily
// creates the shared benchmark file first (uncounted).
func (r *Runner) RunOp(op string) (time.Duration, error) {
	if op == OpCreate {
		r.seq++
		name := fmt.Sprintf("%s-%d", benchPath, r.seq)
		r.watch.Restart()
		if err := r.sys.CreateBulk(name, r.fileSize); err != nil {
			return 0, err
		}
		return r.watch.Elapsed(), nil
	}
	if !r.created {
		if err := r.sys.CreateBulk(benchPath, r.fileSize); err != nil {
			return 0, err
		}
		r.created = true
	}
	return runOne(r.sys, op, r.fileSize, &r.rng, r.watch)
}

// Config identifies a benchmarked configuration.
type Config string

// The evaluated configurations.
const (
	ConfigInvCS      Config = "inv-cs"  // Inversion client/server
	ConfigNFS        Config = "nfs"     // ULTRIX NFS + PRESTOserve
	ConfigInvSP      Config = "inv-sp"  // Inversion single process
	ConfigNFSNoPrest Config = "nfs-raw" // NFS without NVRAM
	ConfigLocalFS    Config = "local"   // local FFS, no network
)

// BuildSystem constructs a configuration.
func BuildSystem(cfg Config, p Params) (System, error) {
	switch cfg {
	case ConfigInvCS:
		return NewInversion(p, true)
	case ConfigInvSP:
		return NewInversion(p, false)
	case ConfigNFS:
		return NewNFS(p, true), nil
	case ConfigNFSNoPrest:
		return NewNFS(p, false), nil
	case ConfigLocalFS:
		return NewLocalFS(p), nil
	default:
		return nil, fmt.Errorf("bench: unknown config %q", cfg)
	}
}

// Report holds per-config, per-op elapsed virtual seconds.
type Report struct {
	FileSize int64
	Seconds  map[Config]map[string]float64
}

// Run executes the full benchmark for every requested configuration.
func Run(p Params, fileSize int64, configs []Config) (*Report, error) {
	rep := &Report{FileSize: fileSize, Seconds: make(map[Config]map[string]float64)}
	for _, cfg := range configs {
		sys, err := BuildSystem(cfg, p)
		if err != nil {
			return nil, err
		}
		times, err := RunOps(sys, fileSize)
		if err != nil {
			return nil, err
		}
		row := make(map[string]float64, len(times))
		for op, d := range times {
			row[op] = d.Seconds()
		}
		rep.Seconds[cfg] = row
	}
	return rep, nil
}

// PaperTable3 records the paper's measured elapsed seconds (Table 3)
// for shape comparison: columns are Inversion client/server, ULTRIX
// NFS (with PRESTOserve), and Inversion single process.
var PaperTable3 = map[string]map[Config]float64{
	OpCreate:      {ConfigInvCS: 141.5, ConfigNFS: 50.6, ConfigInvSP: 111.6},
	OpReadSingle:  {ConfigInvCS: 3.4, ConfigNFS: 2.8, ConfigInvSP: 0.4},
	OpReadSeq:     {ConfigInvCS: 4.8, ConfigNFS: 2.2, ConfigInvSP: 0.4},
	OpReadRandom:  {ConfigInvCS: 5.5, ConfigNFS: 2.4, ConfigInvSP: 0.8},
	OpWriteSingle: {ConfigInvCS: 4.6, ConfigNFS: 2.0, ConfigInvSP: 1.4},
	OpWriteSeq:    {ConfigInvCS: 5.6, ConfigNFS: 1.7, ConfigInvSP: 1.4},
	OpWriteRandom: {ConfigInvCS: 6.0, ConfigNFS: 1.7, ConfigInvSP: 2.9},
	OpReadByte:    {ConfigInvCS: 0.02, ConfigNFS: 0.01, ConfigInvSP: 0.01},
	OpWriteByte:   {ConfigInvCS: 0.03, ConfigNFS: 0.02, ConfigInvSP: 0.02},
}

// OpLabel gives the paper's wording for an operation.
func OpLabel(op string) string {
	switch op {
	case OpCreate:
		return "Create 25MByte file"
	case OpReadSingle:
		return "Single 1MByte read"
	case OpReadSeq:
		return "Page-sized sequential 1MByte read"
	case OpReadRandom:
		return "Page-sized random 1MByte read"
	case OpWriteSingle:
		return "Single 1MByte write"
	case OpWriteSeq:
		return "Page-sized sequential 1MByte write"
	case OpWriteRandom:
		return "Page-sized random 1MByte write"
	case OpReadByte:
		return "Read single byte"
	case OpWriteByte:
		return "Write single byte"
	default:
		return op
	}
}
