// Package bench reproduces the paper's performance evaluation. It
// builds the three measured configurations — Inversion client/server,
// ULTRIX NFS backed by PRESTOserve, and single-process Inversion
// (user code running inside the data manager) — over the simulated
// RZ58 disk and 10 Mbit/s Ethernet cost models, runs the paper's
// benchmark ("Create a 25 MByte file; measure the latency to read or
// write a single byte …; read/write 1 MByte in a single large transfer
// / sequentially in page-sized units / at random in page-sized
// units"), and regenerates Figures 3–6 and Table 3. Absolute 1993
// numbers are not the goal; the shape — who wins, by what factor —
// is.
//
// Workload structure mirrors the paper's client program: each 1 MB (or
// single-byte) test runs under one transaction, opened at test start
// and committed at test end, so commit-time page forcing lands inside
// the measured window. File creation streams through the client
// library, which commits every two page-sized writes (POSTGRES 4.0.1's
// exact buffer-forcing cadence during the paper's create run is not
// documented; this cadence reproduces its per-chunk cost, and the
// B-tree/data interleaving it causes is exactly the effect the paper
// names).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/iosim"
	"repro/internal/nfs"
)

// Op sizes from the paper's benchmark.
const (
	PageSize  = 8192
	MB        = 1 << 20
	FileSize  = 25 * MB // "Create a 25MByte file"
	TestBytes = 1 * MB  // the read/write tests move 1 MB
)

// createTxPages is how many page writes the client library batches per
// transaction while streaming a new file.
const createTxPages = 2

// Params are the calibration knobs of the simulation.
type Params struct {
	Disk    iosim.DiskParams // server disk (both systems)
	InvNet  iosim.NetParams  // Inversion's TCP protocol costs
	NFSNet  iosim.NetParams  // NFS RPC costs
	Presto  nfs.PrestoParams // NVRAM board on the NFS server
	Buffers int              // Inversion shared buffer cache pages

	// CopySmall/CopyLarge model the buffer allocation and copying
	// overhead profiling found in Inversion's remote path ("Profiling
	// reveals that extra work is done in allocating and copying buffers
	// in Inversion"), in bytes/second, for page-sized and single large
	// transfers respectively.
	CopySmall float64
	CopyLarge float64
}

// DefaultParams returns the calibrated 1993-testbed parameters.
func DefaultParams() Params {
	disk := iosim.RZ58()
	disk.TransferRate = 2.5e6
	return Params{
		Disk:      disk,
		InvNet:    iosim.Ethernet10(9 * time.Millisecond),
		NFSNet:    iosim.Ethernet10(7 * time.Millisecond),
		Presto:    nfs.DefaultPresto(),
		Buffers:   300,
		CopySmall: 0.45e6,
		CopyLarge: 0.9e6,
	}
}

// System is one benchmarkable file service configuration. A test is
// bracketed by BeginTest/EndTest (one transaction on Inversion; NFS is
// stateless so they are no-ops there) and performs reads and writes at
// explicit offsets.
type System interface {
	Name() string
	Clock() *iosim.Clock
	// PageUnit is the transfer unit "chosen to be efficient for the
	// file system under test": the chunk size for Inversion, the block
	// size for NFS and the local FS.
	PageUnit() int
	// CreateBulk creates a file of the given size, streaming it in
	// page-sized client writes.
	CreateBulk(name string, size int64) error
	// WarmMeta touches the file's metadata so per-test timings do not
	// include cold name-lookup I/O (the paper flushed data caches
	// between tests; the just-created file's metadata stays hot).
	WarmMeta(name string) error
	// BeginTest opens the file (write selects the open mode) and, on
	// transactional systems, starts the test's transaction.
	BeginTest(name string, write bool) error
	// TestRead reads one page-sized (or smaller) unit.
	TestRead(buf []byte, off int64) error
	// TestWrite writes one page-sized (or smaller) unit.
	TestWrite(data []byte, off int64) error
	// TestSingleRead reads the whole buffer as one large transfer.
	TestSingleRead(buf []byte, off int64) error
	// TestSingleWrite writes the whole buffer as one large transfer.
	TestSingleWrite(data []byte, off int64) error
	// EndTest closes the file and commits.
	EndTest() error
	// FlushCaches empties every cache ("All caches were flushed before
	// each test").
	FlushCaches() error
}

// ---------------------------------------------------------------------
// Inversion configurations.

// InvSystem drives an Inversion database over the simulated disk. With
// a non-nil network it charges the client/server protocol per
// operation; with nil it is the single-process configuration (the
// benchmark registered as user-defined functions running inside the
// data manager).
type InvSystem struct {
	name  string
	db    *core.DB
	sess  *core.Session
	clock *iosim.Clock
	net   *iosim.Network
	p     Params
	open  *core.File
}

// NewInversion builds an Inversion system. clientServer selects whether
// network and copy costs are charged.
func NewInversion(p Params, clientServer bool) (*InvSystem, error) {
	clock := iosim.NewClock()
	sw := device.NewSwitch()
	// Data on the simulated magnetic disk; transaction logs on NVRAM
	// (forcing them is not the bottleneck the paper studies).
	sw.Register(device.NewDisk(iosim.NewDisk(p.Disk, clock), device.DefaultExtentPages))
	sw.Register(device.NewMem(nil, 0))
	if err := sw.SetDefault("disk"); err != nil {
		return nil, err
	}
	db, err := core.Open(sw, core.Options{
		Buffers:      p.Buffers,
		LogClass:     "mem",
		DefaultClass: "disk",
	})
	if err != nil {
		return nil, err
	}
	sys := &InvSystem{db: db, sess: db.NewSession("bench"), clock: clock, p: p}
	if clientServer {
		sys.name = "Inversion client/server"
		sys.net = iosim.NewNetwork(p.InvNet, clock)
	} else {
		sys.name = "Inversion single process"
	}
	return sys, nil
}

// Name reports the configuration name.
func (sys *InvSystem) Name() string { return sys.name }

// PageUnit is the chunk size, so page-sized operations map one-to-one
// onto chunk records.
func (sys *InvSystem) PageUnit() int { return core.ChunkSize }

// Clock reports the system's virtual clock.
func (sys *InvSystem) Clock() *iosim.Clock { return sys.clock }

// DB exposes the underlying database (ablations use it).
func (sys *InvSystem) DB() *core.DB { return sys.db }

// chargeClient charges one protocol round trip plus, optionally, the
// remote path's buffer copy overhead.
func (sys *InvSystem) chargeClient(reqBytes, respBytes int, copyRate float64) {
	if sys.net == nil {
		return
	}
	sys.net.RoundTrip(64+reqBytes, 64+respBytes)
	if copyRate > 0 {
		sys.clock.Advance(time.Duration(float64(reqBytes+respBytes) / copyRate * float64(time.Second)))
	}
}

// CreateBulk streams the file through the client library: page-sized
// p_write calls, a commit every createTxPages of them. Every commit
// forces the dirty data, chunk-index, and metadata pages, interleaving
// B-tree and data writes on the disk head — the effect the paper blames
// for Inversion's file-creation overhead.
func (sys *InvSystem) CreateBulk(name string, size int64) error {
	sys.chargeClient(len(name)+16, 8, 0)
	if err := sys.sess.Begin(); err != nil {
		return err
	}
	f, err := sys.sess.Create(name, core.CreateOpts{})
	if err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	inTx := 0
	for off := int64(0); off < size; off += PageSize {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		// Streamed create pipelines protocol processing with disk I/O,
		// so only the message cost is charged, not copy overhead.
		sys.chargeClient(int(n)+24, 8, 0)
		if _, err := f.WriteAt(buf[:n], off); err != nil {
			return err
		}
		inTx++
		if inTx >= createTxPages {
			inTx = 0
			if err := f.Close(); err != nil {
				return err
			}
			if err := sys.sess.Commit(); err != nil {
				return err
			}
			if off+n < size {
				if err := sys.sess.Begin(); err != nil {
					return err
				}
				if f, err = sys.sess.OpenWrite(name); err != nil {
					return err
				}
			} else {
				f = nil
			}
		}
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		return sys.sess.Commit()
	}
	return nil
}

// WarmMeta resolves the file and touches the first chunk-index pages.
func (sys *InvSystem) WarmMeta(name string) error {
	f, err := sys.sess.Open(name)
	if err != nil {
		return err
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 0); err != nil && err != io.EOF {
		f.Close()
		return err
	}
	return f.Close()
}

// BeginTest starts the test's transaction and opens the file.
func (sys *InvSystem) BeginTest(name string, write bool) error {
	if err := sys.sess.Begin(); err != nil {
		return err
	}
	sys.chargeClient(len(name)+24, 8, 0) // p_open
	var err error
	if write {
		sys.open, err = sys.sess.OpenWrite(name)
	} else {
		sys.open, err = sys.sess.Open(name)
	}
	return err
}

// TestRead is one p_read.
func (sys *InvSystem) TestRead(buf []byte, off int64) error {
	sys.chargeClient(24, len(buf), sys.p.CopySmall)
	if _, err := sys.open.ReadAt(buf, off); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// TestWrite is one p_write.
func (sys *InvSystem) TestWrite(data []byte, off int64) error {
	sys.chargeClient(len(data)+24, 8, sys.p.CopySmall)
	_, err := sys.open.WriteAt(data, off)
	return err
}

// TestSingleRead is one large p_read.
func (sys *InvSystem) TestSingleRead(buf []byte, off int64) error {
	sys.chargeClient(24, len(buf), sys.p.CopyLarge)
	if _, err := sys.open.ReadAt(buf, off); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// TestSingleWrite is one large p_write.
func (sys *InvSystem) TestSingleWrite(data []byte, off int64) error {
	sys.chargeClient(len(data)+24, 8, sys.p.CopyLarge)
	_, err := sys.open.WriteAt(data, off)
	return err
}

// EndTest closes the file and commits the test's transaction.
func (sys *InvSystem) EndTest() error {
	sys.chargeClient(8, 8, 0) // p_close + commit
	if sys.open != nil {
		if err := sys.open.Close(); err != nil {
			return err
		}
		sys.open = nil
	}
	return sys.sess.Commit()
}

// FlushCaches forces dirty pages down and empties the buffer cache.
func (sys *InvSystem) FlushCaches() error {
	if err := sys.db.Pool().FlushAll(); err != nil {
		return err
	}
	sys.db.Pool().Crash() // drop clean frames without re-writing
	return nil
}

// ---------------------------------------------------------------------
// ULTRIX NFS configuration.

// NFSSystem drives the NFS baseline. The protocol is stateless, so
// BeginTest/EndTest only remember the file name.
type NFSSystem struct {
	name   string
	client *nfs.Client
	srv    *nfs.Server
	clock  *iosim.Clock
	cur    string
}

// NewNFS builds the ULTRIX NFS baseline; presto selects the NVRAM
// write cache the paper's server used.
func NewNFS(p Params, presto bool) *NFSSystem {
	clock := iosim.NewClock()
	store := nfs.NewFileStore(iosim.NewDisk(p.Disk, clock), p.Buffers)
	var pv *nfs.Presto
	name := "ULTRIX NFS"
	if presto {
		pv = nfs.NewPresto(p.Presto, clock)
	} else {
		name = "ULTRIX NFS (no PRESTOserve)"
	}
	srv := nfs.NewServer(store, pv)
	return &NFSSystem{
		name:   name,
		client: nfs.NewClient(srv, iosim.NewNetwork(p.NFSNet, clock)),
		srv:    srv,
		clock:  clock,
	}
}

// Name reports the configuration name.
func (sys *NFSSystem) Name() string { return sys.name }

// PageUnit is the NFS transfer size.
func (sys *NFSSystem) PageUnit() int { return nfs.BlockSize }

// Clock reports the system's virtual clock.
func (sys *NFSSystem) Clock() *iosim.Clock { return sys.clock }

// CreateBulk creates and writes the file through page-sized NFS writes.
func (sys *NFSSystem) CreateBulk(name string, size int64) error {
	if err := sys.client.Create(name); err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	for off := int64(0); off < size; off += PageSize {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if err := sys.client.WriteAt(name, buf[:n], off); err != nil {
			return err
		}
	}
	return sys.client.Commit(name)
}

// WarmMeta is a no-op: NFS clients cache attributes.
func (sys *NFSSystem) WarmMeta(string) error { return nil }

// BeginTest remembers the target file.
func (sys *NFSSystem) BeginTest(name string, _ bool) error {
	sys.cur = name
	return nil
}

// TestRead is one (or a few) read RPCs.
func (sys *NFSSystem) TestRead(buf []byte, off int64) error {
	return sys.client.ReadAt(sys.cur, buf, off)
}

// TestWrite is one (or a few) synchronous write RPCs.
func (sys *NFSSystem) TestWrite(data []byte, off int64) error {
	return sys.client.WriteAt(sys.cur, data, off)
}

// TestSingleRead still moves 8 KB RPCs on the wire (NFS v2 limit).
func (sys *NFSSystem) TestSingleRead(buf []byte, off int64) error {
	return sys.client.ReadAt(sys.cur, buf, off)
}

// TestSingleWrite still moves 8 KB RPCs on the wire.
func (sys *NFSSystem) TestSingleWrite(data []byte, off int64) error {
	return sys.client.WriteAt(sys.cur, data, off)
}

// EndTest is a no-op: every NFS write was already stable.
func (sys *NFSSystem) EndTest() error { return nil }

// FlushCaches empties the server's buffer cache and NVRAM.
func (sys *NFSSystem) FlushCaches() error {
	sys.srv.FlushCaches()
	return nil
}

// ---------------------------------------------------------------------
// Local FFS configuration (for the [STON93] local comparison).

// LocalFS drives the FFS-like store directly with no network: the
// "native file system used locally" yardstick.
type LocalFS struct {
	store *nfs.FileStore
	clock *iosim.Clock
	cur   string
}

// NewLocalFS builds the local file system yardstick.
func NewLocalFS(p Params) *LocalFS {
	clock := iosim.NewClock()
	return &LocalFS{store: nfs.NewFileStore(iosim.NewDisk(p.Disk, clock), p.Buffers), clock: clock}
}

// Name reports the configuration name.
func (sys *LocalFS) Name() string { return "local FFS" }

// PageUnit is the FFS block size.
func (sys *LocalFS) PageUnit() int { return nfs.BlockSize }

// Clock reports the system's virtual clock.
func (sys *LocalFS) Clock() *iosim.Clock { return sys.clock }

// CreateBulk writes the file through the local FS (synchronous block
// writes, sequential layout).
func (sys *LocalFS) CreateBulk(name string, size int64) error {
	sys.store.Create(name)
	buf := make([]byte, PageSize)
	for off := int64(0); off < size; off += PageSize {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if _, err := sys.store.WriteAt(name, buf[:n], off, true); err != nil {
			return err
		}
	}
	return sys.store.SyncMeta(name)
}

// WarmMeta is a no-op: the local FS block map is in memory.
func (sys *LocalFS) WarmMeta(string) error { return nil }

// BeginTest remembers the target file.
func (sys *LocalFS) BeginTest(name string, _ bool) error {
	sys.cur = name
	return nil
}

// TestRead reads at off.
func (sys *LocalFS) TestRead(buf []byte, off int64) error {
	_, err := sys.store.ReadAt(sys.cur, buf, off)
	return err
}

// TestWrite writes synchronously at off.
func (sys *LocalFS) TestWrite(data []byte, off int64) error {
	_, err := sys.store.WriteAt(sys.cur, data, off, true)
	return err
}

// TestSingleRead reads the buffer in one local call.
func (sys *LocalFS) TestSingleRead(buf []byte, off int64) error { return sys.TestRead(buf, off) }

// TestSingleWrite writes the buffer in one local call.
func (sys *LocalFS) TestSingleWrite(data []byte, off int64) error { return sys.TestWrite(data, off) }

// EndTest is a no-op.
func (sys *LocalFS) EndTest() error { return nil }

// FlushCaches empties the buffer cache.
func (sys *LocalFS) FlushCaches() error {
	sys.store.FlushCache()
	return nil
}

// check interface conformance.
var (
	_ System = (*InvSystem)(nil)
	_ System = (*NFSSystem)(nil)
	_ System = (*LocalFS)(nil)
)

// fmtSeconds renders a duration as seconds for labels.
func fmtSeconds(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
