package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/iosim"
)

// Ablations probe the design choices the paper calls out: the shared
// buffer cache size (64 as shipped vs 300 at Berkeley), write
// coalescing of small sequential writes, chunk compression, and the
// jukebox's magnetic-disk staging cache.

// CacheSizeResult compares read workloads under two cache sizes.
type CacheSizeResult struct {
	SmallBuffers, LargeBuffers int
	Small, Large               map[string]time.Duration
}

// AblateCacheSize runs the read tests with the as-shipped 64-buffer
// cache and the Berkeley 300-buffer cache.
func AblateCacheSize(p Params, fileSize int64) (*CacheSizeResult, error) {
	res := &CacheSizeResult{SmallBuffers: 64, LargeBuffers: 300}
	for _, n := range []int{64, 300} {
		pp := p
		pp.Buffers = n
		sys, err := NewInversion(pp, false)
		if err != nil {
			return nil, err
		}
		times, err := RunOps(sys, fileSize)
		if err != nil {
			return nil, err
		}
		if n == 64 {
			res.Small = times
		} else {
			res.Large = times
		}
	}
	return res, nil
}

// CoalesceResult compares many small sequential writes with and without
// the write-coalescing buffer.
type CoalesceResult struct {
	Bytes, WriteSize   int
	Coalesced, Direct  time.Duration
	RecordsCoalesced   int
	RecordsUncoalesced int
}

// AblateCoalescing writes 1 MB in 256-byte sequential writes inside a
// single transaction, once letting the File buffer coalesce them into
// chunk-sized records and once forcing every write through to a record
// update ("Multiple small sequential writes during a single transaction
// are coalesced to maximize the size of the chunk stored in each
// database record").
func AblateCoalescing(p Params) (*CoalesceResult, error) {
	const total = 1 * MB
	const wsize = 256
	res := &CoalesceResult{Bytes: total, WriteSize: wsize}

	run := func(coalesce bool) (time.Duration, int, error) {
		sys, err := NewInversion(p, false)
		if err != nil {
			return 0, 0, err
		}
		sess := sys.sess
		if err := sess.Begin(); err != nil {
			return 0, 0, err
		}
		w := iosim.StartWatch(sys.clock)
		f, err := sess.Create("/coalesce", core.CreateOpts{})
		if err != nil {
			return 0, 0, err
		}
		buf := make([]byte, wsize)
		for off := 0; off < total; off += wsize {
			if _, err := f.Write(buf); err != nil {
				return 0, 0, err
			}
			if !coalesce {
				if err := f.Flush(); err != nil {
					return 0, 0, err
				}
			}
		}
		if err := f.Close(); err != nil {
			return 0, 0, err
		}
		if err := sess.Commit(); err != nil {
			return 0, 0, err
		}
		elapsed := w.Elapsed()
		// Count live chunk records (dead versions excluded).
		records := 0
		snap := sys.db.Manager().CurrentSnapshot()
		oid, err := sys.db.Resolve(snap, "/coalesce")
		if err != nil {
			return 0, 0, err
		}
		n, err := sys.db.Switch().NPages(oid)
		if err != nil {
			return 0, 0, err
		}
		records = int(n) // pages in the chunk table ≈ record versions
		return elapsed, records, nil
	}

	var err error
	if res.Coalesced, res.RecordsCoalesced, err = run(true); err != nil {
		return nil, err
	}
	if res.Direct, res.RecordsUncoalesced, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

// CompressionResult compares a compressible file stored plain vs
// compressed.
type CompressionResult struct {
	Bytes                   int
	CreatePlain, CreateComp time.Duration
	ReadPlain, ReadComp     time.Duration
	PagesPlain, PagesComp   uint32
	RandomPlain, RandomComp time.Duration
}

// AblateCompression stores a 2 MB compressible file plain and with
// FlagCompressed and compares creation time, storage pages, cold
// sequential read, and cold random page reads.
func AblateCompression(p Params) (*CompressionResult, error) {
	const total = 2 * MB
	res := &CompressionResult{Bytes: total}
	data := make([]byte, total)
	for i := range data {
		data[i] = byte(i / 1024) // long runs: compresses well
	}

	run := func(flags uint32) (create, seqRead, rndRead time.Duration, pages uint32, err error) {
		sys, err := NewInversion(p, false)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		w := iosim.StartWatch(sys.clock)
		if err := sys.sess.WriteFile("/z", data, core.CreateOpts{Flags: flags}); err != nil {
			return 0, 0, 0, 0, err
		}
		create = w.Elapsed()
		if err := sys.FlushCaches(); err != nil {
			return 0, 0, 0, 0, err
		}
		w.Restart()
		f, err := sys.sess.Open("/z")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if _, err := io.Copy(io.Discard, f); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := f.Close(); err != nil {
			return 0, 0, 0, 0, err
		}
		seqRead = w.Elapsed()
		if err := sys.FlushCaches(); err != nil {
			return 0, 0, 0, 0, err
		}
		w.Restart()
		if err := sys.BeginTest("/z", false); err != nil {
			return 0, 0, 0, 0, err
		}
		rng := lcg(7)
		page := make([]byte, PageSize)
		for i := 0; i < 64; i++ {
			off := int64(rng.next()%uint64(total/PageSize)) * PageSize
			if err := sys.TestRead(page, off); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		if err := sys.EndTest(); err != nil {
			return 0, 0, 0, 0, err
		}
		rndRead = w.Elapsed()
		snap := sys.db.Manager().CurrentSnapshot()
		oid, err := sys.db.Resolve(snap, "/z")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		pages, err = sys.db.Switch().NPages(oid)
		return create, seqRead, rndRead, pages, err
	}

	var err error
	if res.CreatePlain, res.ReadPlain, res.RandomPlain, res.PagesPlain, err = run(0); err != nil {
		return nil, err
	}
	if res.CreateComp, res.ReadComp, res.RandomComp, res.PagesComp, err = run(core.FlagCompressed); err != nil {
		return nil, err
	}
	return res, nil
}

// JukeboxResult compares jukebox reads with and without a useful
// staging cache.
type JukeboxResult struct {
	Bytes                 int
	ColdRead              time.Duration
	CachedRead            time.Duration
	TinyCacheRepeatRead   time.Duration
	PlatterLoadsCached    int64
	PlatterLoadsTinyCache int64
}

// AblateJukeboxCache stores a file on the WORM jukebox and reads it
// twice, with the default 10 MB staging cache and with a nearly
// disabled one: the second read should be nearly free with the cache
// and pay platter mechanics without it.
func AblateJukeboxCache(p Params) (*JukeboxResult, error) {
	const total = 2 * MB
	res := &JukeboxResult{Bytes: total}

	run := func(cachePages int) (cold, repeat time.Duration, loads int64, err error) {
		clock := iosim.NewClock()
		sw := device.NewSwitch()
		jp := device.DefaultJukebox()
		if cachePages > 0 {
			jp.CachePages = cachePages
		}
		jb := device.NewJukebox(jp, clock)
		sw.Register(device.NewMem(nil, 0))
		sw.Register(jb)
		db, err := core.Open(sw, core.Options{Buffers: 32, DefaultClass: "mem", LogClass: "mem"})
		if err != nil {
			return 0, 0, 0, err
		}
		sess := db.NewSession("bench")
		if err := sess.WriteFile("/jb", make([]byte, total), core.CreateOpts{Class: "jukebox"}); err != nil {
			return 0, 0, 0, err
		}
		// Force everything to the platter and empty both the page cache
		// and the staging cache so the first read is truly cold.
		if err := db.Pool().FlushAll(); err != nil {
			return 0, 0, 0, err
		}
		if err := jb.DropCache(); err != nil {
			return 0, 0, 0, err
		}
		db.Pool().Crash()
		w := iosim.StartWatch(clock)
		if _, err := sess.ReadFile("/jb"); err != nil {
			return 0, 0, 0, err
		}
		cold = w.Elapsed()
		db.Pool().Crash() // page cache gone; only the jukebox staging cache remains
		w.Restart()
		if _, err := sess.ReadFile("/jb"); err != nil {
			return 0, 0, 0, err
		}
		repeat = w.Elapsed()
		return cold, repeat, jb.PlatterLoads(), nil
	}

	var err error
	var cold time.Duration
	if cold, res.CachedRead, res.PlatterLoadsCached, err = run(0); err != nil {
		return nil, err
	}
	res.ColdRead = cold
	if _, res.TinyCacheRepeatRead, res.PlatterLoadsTinyCache, err = run(4); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders a short summary (used by invbench -ablate).
func (r *CoalesceResult) String() string {
	return fmt.Sprintf("coalesced %.3fs (%d pages) vs direct %.3fs (%d pages)",
		r.Coalesced.Seconds(), r.RecordsCoalesced, r.Direct.Seconds(), r.RecordsUncoalesced)
}
