package bench

import "testing"

// TestMetaPointSmoke runs a deliberately tiny metadata storm — small
// enough to finish in a couple of seconds even under the race detector,
// where it is this package's race coverage for the concurrent meta
// workers (the full-size throughput floor in the repo root skips under
// race). It checks the point is well-formed: the advertised op count
// ran, per-shard stats came back for every shard, and the hash actually
// spread the clients' directories across more than one shard.
func TestMetaPointSmoke(t *testing.T) {
	pt, err := RunMetaPoint(MetaOptions{
		Shards:        8,
		Goroutines:    4,
		OpsPerG:       16,
		DirsPerG:      2,
		EntriesPerDir: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Workload != "meta-n8" {
		t.Fatalf("workload = %q", pt.Workload)
	}
	if pt.Ops != 4*16 || pt.OpsPerSec <= 0 {
		t.Fatalf("ops = %d at %.1f ops/s", pt.Ops, pt.OpsPerSec)
	}
	if len(pt.Namespace) != 8 {
		t.Fatalf("namespace stats for %d shards, want 8", len(pt.Namespace))
	}
	active := 0
	for _, s := range pt.Namespace {
		if s.Inserts > 0 || s.Lookups > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("metadata traffic reached %d shards, want >= 2", active)
	}
}
