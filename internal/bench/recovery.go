package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/iosim"
	"repro/internal/page"
)

// RecoveryResult compares Inversion's log-only crash recovery with an
// fsck-style full structural scan of the same data. The paper: "No
// file system consistency checker needs to run on the Inversion file
// system after a crash since recovery is managed by the POSTGRES
// storage manager. File system recovery is essentially instantaneous."
type RecoveryResult struct {
	Files         int
	DataBytes     int64
	RecoveryTime  time.Duration // reopen: read the transaction logs
	FsckTime      time.Duration // graph-traversal scan of every page
	PagesOnDisk   int
	LogPagesRead  int
	SpeedupFactor float64
}

// AblateRecovery populates a database with files totalling dataBytes,
// crashes it mid-transaction, and measures (in simulated time) reopening
// the database versus an fsck-like pass that must read every allocated
// page to rebuild consistency the way graph-traversal checkers do.
func AblateRecovery(p Params, files int, dataBytes int64) (*RecoveryResult, error) {
	clock := iosim.NewClock()
	sw := device.NewSwitch()
	sw.Register(device.NewDisk(iosim.NewDisk(p.Disk, clock), device.DefaultExtentPages))
	sw.Register(device.NewMem(nil, 0))
	if err := sw.SetDefault("disk"); err != nil {
		return nil, err
	}
	opts := core.Options{Buffers: p.Buffers, LogClass: "mem", DefaultClass: "disk"}
	db, err := core.Open(sw, opts)
	if err != nil {
		return nil, err
	}
	s := db.NewSession("bench")
	per := dataBytes / int64(files)
	buf := make([]byte, per)
	for i := 0; i < files; i++ {
		if err := s.WriteFile(fmt.Sprintf("/f%d", i), buf, core.CreateOpts{}); err != nil {
			return nil, err
		}
	}
	// A transaction in flight at the crash.
	if err := s.Begin(); err != nil {
		return nil, err
	}
	if err := s.WriteFile("/in-flight", buf, core.CreateOpts{}); err != nil {
		return nil, err
	}
	db.Crash()

	res := &RecoveryResult{Files: files, DataBytes: dataBytes}

	// Recovery: reopen. The only I/O is the transaction status and
	// time logs plus a handful of catalog pages.
	w := iosim.StartWatch(clock)
	db2, err := db.Recover()
	if err != nil {
		return nil, err
	}
	res.RecoveryTime = w.Elapsed()

	// Confirm the recovered state is consistent (not timed).
	s2 := db2.NewSession("bench")
	if _, err := s2.ReadFile("/f0"); err != nil {
		return nil, fmt.Errorf("bench: recovery lost data: %w", err)
	}

	// fsck: a conventional checker must visit every allocated page of
	// every relation to rebuild reference counts and free maps.
	db2.Pool().Crash() // cold cache, like a freshly booted machine
	w.Restart()
	pages := 0
	pbuf := make(page.Page, page.Size)
	for _, ri := range db2.Catalog().Relations() {
		n, err := sw.NPages(ri.OID)
		if err != nil {
			continue
		}
		for pn := uint32(0); pn < n; pn++ {
			if err := sw.ReadPage(ri.OID, pn, pbuf); err != nil {
				return nil, err
			}
			pages++
		}
	}
	res.FsckTime = w.Elapsed()
	res.PagesOnDisk = pages
	if res.RecoveryTime > 0 {
		res.SpeedupFactor = res.FsckTime.Seconds() / res.RecoveryTime.Seconds()
	}
	return res, nil
}
