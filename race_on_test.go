//go:build race

package repro

// raceEnabled reports whether this test binary was built with the race
// detector. Real-sleep scaling floors use it to skip: race
// instrumentation inflates the CPU half of the workload 10-20x, which
// both blows the CI race budget and distorts the CPU-vs-device-sleep
// ratio the floors assert on. The concurrency those floors exercise is
// still race-checked by the cheap smoke tests that run in every mode.
const raceEnabled = true
