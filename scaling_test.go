package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
)

// BenchmarkConcurrentScaling measures wall-clock throughput of the
// storage stack as goroutines are added — the proof that the sharded
// buffer pool, read-shared indexes, and txn visibility cache actually
// buy parallelism. Each sub-benchmark runs a fixed op count per
// goroutine against a device with a real (wall-clock) per-page seek
// and a pool smaller than the working set, so throughput scales only
// if the stack overlaps concurrent misses instead of serializing them
// under a global lock. The speedup of g=4 over g=1 is the headline
// number (recorded in EXPERIMENTS.md, regenerable with
// `go run ./cmd/invbench -scale`).
func BenchmarkConcurrentScaling(b *testing.B) {
	const opsPerG = 400
	for _, wl := range []string{bench.WorkloadRead, bench.WorkloadMixed} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", wl, g), func(b *testing.B) {
				var opsPerSec float64
				for i := 0; i < b.N; i++ {
					pt, err := bench.RunScalingPoint(wl, g, opsPerG)
					if err != nil {
						b.Fatal(err)
					}
					opsPerSec += pt.OpsPerSec
				}
				b.ReportMetric(opsPerSec/float64(b.N), "ops/s")
			})
		}
	}
}
