// Queries: ad hoc POSTQUEL over the file system's namespace, metadata,
// and contents. Builds a small home-directory tree with typed files,
// defines a new type and function at run time, and answers the paper's
// example queries — including one against the past.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/inversion"
)

func main() {
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 128})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")
	if err := inversion.RegisterStandardTypes(s); err != nil {
		log.Fatal(err)
	}
	eng := inversion.NewQueryEngine(db)

	// Define extra media types so the paper's movie/sound query works.
	for _, q := range []string{
		`define type "movie" doc "digital video"`,
		`define type "sound" doc "digital audio"`,
	} {
		if _, err := eng.Run(s, q); err != nil {
			log.Fatal(err)
		}
	}

	// Populate /users/mao.
	if err := s.MkdirAll("/users/mao"); err != nil {
		log.Fatal(err)
	}
	puts := []struct {
		path, typ, data string
	}{
		{"/users/mao/demo.movie", "movie", "FRAMES..."},
		{"/users/mao/talk.sound", "sound", "SAMPLES..."},
		{"/users/mao/paper.t", inversion.TypeTroff, ".KW RISC filesystems\n.ft R\n.ps 11\nInversion is a file system built on a DBMS.\n"},
		{"/users/mao/notes.txt", inversion.TypeASCII, "remember: vacuum the database\nand calibrate the benchmark\n"},
	}
	for _, p := range puts {
		if err := s.WriteFile(p.path, []byte(p.data), inversion.CreateOpts{Type: p.typ}); err != nil {
			log.Fatal(err)
		}
	}
	other := db.NewSession("someone-else")
	if err := other.WriteFile("/users/shared.movie", []byte("x"), inversion.CreateOpts{Type: "movie"}); err != nil {
		log.Fatal(err)
	}

	show := func(q string) *inversion.QueryResult {
		fmt.Printf("\n* %s\n", q)
		res, err := eng.Run(s, q)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range res.Rows {
			var b bytes.Buffer
			for i, v := range row {
				if i > 0 {
					b.WriteString("  |  ")
				}
				b.WriteString(v.String())
			}
			fmt.Printf("    %s\n", b.String())
		}
		fmt.Printf("    (%d rows)\n", len(res.Rows))
		return res
	}

	// The paper's media query.
	show(`retrieve (filename)
	        where owner(file) = "mao"
	        and (filetype(file) = "movie" or filetype(file) = "sound")
	        and dir(file) = "/users/mao"`)

	// Content query through a registered function.
	show(`retrieve (filename) where "RISC" in keywords(file)`)

	// Metadata arithmetic.
	show(`retrieve (filename, size(file)) where size(file) > 20 and not isdir(file)`)

	// Run-time extensibility: a new function over ASCII documents.
	err = s.DefineFunction(inversion.FuncInfo{
		Name: "todos", TypeName: inversion.TypeASCII,
		Doc: "count of remember-lines",
	}, func(c *inversion.FuncCtx) (inversion.Value, error) {
		data, err := c.Contents()
		if err != nil {
			return inversion.Value{}, err
		}
		return inversion.IntValue(int64(bytes.Count(data, []byte("remember")))), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	show(`retrieve (filename, todos(file)) where todos(file) > 0`)

	// Query the past: the directory before the last file was added.
	before := db.Manager().LastCommitTime()
	if err := s.WriteFile("/users/mao/late-addition", []byte("z"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	show(`retrieve (filename) where dir(file) = "/users/mao"`)
	show(fmt.Sprintf(`retrieve (filename) where dir(file) = "/users/mao" asof %d`, before))
}
