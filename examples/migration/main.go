// Migration: rules-driven file migration across the storage hierarchy
// ("Services Under Investigation"). Declares a policy — large files
// move from magnetic disk to the WORM optical jukebox — applies it,
// and shows that access stays location-transparent while the virtual
// clock reveals the cost difference between the tiers.
package main

import (
	"fmt"
	"log"

	"repro/inversion"
)

func main() {
	clock := inversion.NewClock()
	sw := inversion.NewDeviceSwitch()
	sw.Register(inversion.NewDiskDevice(clock))
	sw.Register(inversion.NewJukeboxDevice(clock))
	sw.Register(inversion.NewMemDevice(nil, 0))
	if err := sw.SetDefault("disk"); err != nil {
		log.Fatal(err)
	}
	db, err := inversion.Open(sw, inversion.Options{
		Buffers: 64, DefaultClass: "disk", LogClass: "mem",
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("admin")

	// A mix of datasets on magnetic disk.
	files := []struct {
		path string
		size int
	}{
		{"/data/small-notes", 4 << 10},
		{"/data/medium-log", 200 << 10},
		{"/data/large-scan-a", 2 << 20},
		{"/data/large-scan-b", 3 << 20},
	}
	if err := s.MkdirAll("/data"); err != nil {
		log.Fatal(err)
	}
	for _, f := range files {
		if err := s.WriteFile(f.path, make([]byte, f.size), inversion.CreateOpts{}); err != nil {
			log.Fatal(err)
		}
	}
	show(db, s, "before migration")

	// Declare the policy: anything over 1 MB belongs on the jukebox.
	rules := inversion.NewRulesEngine(db)
	if err := rules.Add(s, inversion.Rule{
		Name:        "archive-large-files",
		Where:       "size(file) > 1000000",
		TargetClass: "jukebox",
	}); err != nil {
		log.Fatal(err)
	}
	// Policies are themselves files: transaction-protected, versioned.
	if err := rules.Save(s, "/etc-migration-rules"); err != nil {
		log.Fatal(err)
	}

	moves, err := rules.Apply(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napplied migration rules:")
	for _, m := range moves {
		fmt.Printf("  %-20s %s -> %s (rule %q)\n", m.Path, m.From, m.To, m.Rule)
	}
	show(db, s, "after migration")

	// Location transparency: same API, same paths; only the clock
	// knows the file crossed tiers.
	fmt.Println("\nreading one file from each tier (virtual time cost):")
	for _, path := range []string{"/data/medium-log", "/data/large-scan-a"} {
		before := clock.Now()
		data, err := s.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %7d bytes in %8.3fs simulated\n",
			path, len(data), (clock.Now() - before).Seconds())
	}
}

func show(db *inversion.DB, s *inversion.Session, label string) {
	fmt.Printf("\n%s:\n", label)
	eng := inversion.NewQueryEngine(db)
	res, err := eng.Run(s, `retrieve (filename, size(file), device(file)) where not isdir(file)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-20s %9s bytes on %s\n", row[0], row[1], row[2])
	}
}
