// Satellite: the Sequoia 2000 scenario that motivated Inversion. Stores
// a season of synthetic Thematic Mapper scenes as typed files, then
// answers the paper's showcase query inside the file system:
//
//	retrieve (snow(file), filename)
//	    where filetype(file) = "tm"
//	    and snow(file)/size(file) > 0.5 and month_of(file) = "April"
//
// The snow() classification function runs inside the data manager, so
// no image data crosses a process boundary.
package main

import (
	"fmt"
	"log"

	"repro/inversion"
)

func main() {
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 256})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("sequoia")
	if err := inversion.RegisterStandardTypes(s); err != nil {
		log.Fatal(err)
	}
	if err := s.MkdirAll("/images/tm"); err != nil {
		log.Fatal(err)
	}

	// A season of scenes: snow recedes from winter to summer.
	scenes := []struct {
		name string
		snow float64
	}{
		{"sierra-jan", 0.92},
		{"sierra-feb", 0.85},
		{"sierra-apr", 0.64},
		{"sierra-may", 0.38},
		{"sierra-jul", 0.05},
	}
	fmt.Println("storing Thematic Mapper scenes as typed files...")
	for i, sc := range scenes {
		img := inversion.GenerateScene(inversion.SatParams{
			Width: 64, Height: 64, SnowFraction: sc.snow, Seed: uint64(i + 1),
		})
		path := "/images/tm/" + sc.name
		if err := s.WriteFile(path, img.Encode(), inversion.CreateOpts{Type: inversion.TypeTM}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s planted snow %.0f%%\n", path, sc.snow*100)
	}
	// A text file in the same directory: queries must skip it, since
	// snow() is defined only on type tm.
	if err := s.WriteFile("/images/tm/README",
		[]byte("Thematic Mapper scenes, Sierra Nevada\n"),
		inversion.CreateOpts{Type: inversion.TypeASCII}); err != nil {
		log.Fatal(err)
	}

	// Classification functions run in the data manager.
	fmt.Println("\ncalling classification functions:")
	for _, fn := range []string{"snow", "pixelcount", "pixelavg"} {
		v, err := s.Call(fn, "/images/tm/sierra-apr")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s(/images/tm/sierra-apr) = %s\n", fn, v)
	}
	px, err := inversion.GetPixel(s, "/images/tm/sierra-apr", 0, 10, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  getpixel(band 0, 10, 10) = %d\n", px)

	// The paper's query: scenes that are more than half snow.
	eng := inversion.NewQueryEngine(db)
	q := `retrieve (snow(file), filename)
	        where filetype(file) = "tm"
	        and snow(file)/pixelcount(file) > 0.5`
	fmt.Printf("\n%s\n\n", q)
	res, err := eng.Run(s, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s  %s\n", "snow", "filename")
	for _, row := range res.Rows {
		fmt.Printf("%-8s  %s\n", row[0], row[1])
	}
	fmt.Printf("(%d of %d scenes)\n", len(res.Rows), len(scenes))
}
