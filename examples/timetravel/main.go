// Timetravel: fine-grained time travel over file data and metadata.
// Edits a file several times, views every historical version, lists a
// directory as it used to be, and undeletes a file removed by mistake —
// "it allows users to undelete files removed accidentally, or to
// recover a working version of a program which they have changed."
package main

import (
	"fmt"
	"log"

	"repro/inversion"
)

func main() {
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 128})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")

	// Three generations of a program.
	versions := []string{
		"v1: works\n",
		"v2: refactored, still works\n",
		"v3: \"improved\", now broken\n",
	}
	var stamps []int64
	for _, v := range versions {
		if err := s.WriteFile("/prog.c", []byte(v), inversion.CreateOpts{}); err != nil {
			log.Fatal(err)
		}
		stamps = append(stamps, db.Manager().LastCommitTime())
	}

	fmt.Println("current contents:")
	cur, err := s.ReadFile("/prog.c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", cur)

	fmt.Println("every transaction-consistent past state is visible:")
	for i, t := range stamps {
		old, err := s.ReadFileAsOf("/prog.c", t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  as of commit %d: %s", i+1, old)
	}

	// Recover the working version: read it from the past, write it as
	// the present.
	fmt.Println("\nrecovering the working v2...")
	working, err := s.ReadFileAsOf("/prog.c", stamps[1])
	if err != nil {
		log.Fatal(err)
	}
	if err := s.WriteFile("/prog.c", working, inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	cur, _ = s.ReadFile("/prog.c")
	fmt.Printf("current contents now: %s", cur)

	// Undelete: remove a file, then look back in time.
	if err := s.WriteFile("/precious-data", []byte("one of a kind\n"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	if err := s.Unlink("/precious-data"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n/precious-data deleted. directory now:")
	list(s, 0)
	fmt.Println("directory as of just before the delete:")
	list(s, before)

	saved, err := s.ReadFileAsOf("/precious-data", before)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.WriteFile("/precious-data", saved, inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undeleted: %s", saved)

	// Historical files may not be opened for writing.
	if _, err := db.OpenAsOf("/prog.c", stamps[0]); err == nil {
		f, _ := db.OpenAsOf("/prog.c", stamps[0])
		if _, werr := f.Write([]byte("x")); werr != nil {
			fmt.Println("\nwriting to a historical file correctly fails:", werr)
		}
		f.Close()
	}
}

func list(s *inversion.Session, asof int64) {
	var entries []inversion.DirEntry
	var err error
	if asof == 0 {
		entries, err = s.ReadDir("/")
	} else {
		entries, err = s.ReadDirAsOf("/", asof)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  %s (%d bytes)\n", e.Name, e.Attr.Size)
	}
}
