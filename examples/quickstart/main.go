// Quickstart: the Inversion basics — a file system whose files live in
// database tables. Creates files and directories, writes and reads
// through the ordinary io interfaces, brackets multi-file changes in a
// transaction, and shows that an aborted transaction leaves no trace
// and a crash needs no fsck.
package main

import (
	"fmt"
	"log"

	"repro/inversion"
)

func main() {
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 128})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")

	// Plain file I/O (each op is its own transaction when no explicit
	// one is active).
	if err := s.MkdirAll("/users/mao"); err != nil {
		log.Fatal(err)
	}
	f, err := s.Create("/users/mao/hello.txt", inversion.CreateOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(f, "hello from the Inversion file system")
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	data, err := s.ReadFile("/users/mao/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s", data)

	// The naming table at work: every file has an OID, and its chunk
	// table is named inv<oid> — Table 1 of the paper.
	attr, err := s.Stat("/users/mao/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file oid %d, data stored in table inv%d, %d bytes\n\n",
		attr.File, attr.File, attr.Size)

	// Transaction protection across multiple files: the paper's
	// check-in example. Either all source files land, or none.
	fmt.Println("checking in three source files atomically...")
	if err := s.Begin(); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"a.c", "b.c", "c.c"} {
		if err := s.WriteFile("/users/mao/"+name, []byte("int main() {}\n"), inversion.CreateOpts{}); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	entries, err := s.ReadDir("/users/mao")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  %-12s %4d bytes  owner %s\n", e.Name, e.Attr.Size, e.Attr.Owner)
	}

	// An aborted transaction leaves no trace.
	if err := s.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := s.WriteFile("/users/mao/mistake", []byte("oops"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Stat("/users/mao/mistake"); err != nil {
		fmt.Println("\nafter abort, /users/mao/mistake does not exist — as it should be")
	}

	// Crash recovery: kill the buffer cache mid-transaction and reopen.
	// Recovery is instantaneous: no consistency checker runs; the
	// status log alone decides what survived.
	if err := s.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := s.WriteFile("/users/mao/in-flight", []byte("never committed"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	db.Crash()
	db2, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	s2 := db2.NewSession("mao")
	if _, err := s2.Stat("/users/mao/in-flight"); err != nil {
		fmt.Println("after crash + instant recovery, the uncommitted file is gone")
	}
	if got, err := s2.ReadFile("/users/mao/hello.txt"); err == nil {
		fmt.Printf("and committed data survived: %s", got)
	}
}
