// Fileserver: because invfs adapts Inversion to io/fs, the whole Go
// ecosystem works on top of the database file system unchanged — here,
// net/http's file server. Time travel becomes a URL parameter: the
// same server exposes every historical state of the tree under
// /asof/<timestamp>/.
//
// The program starts the server on an ephemeral port, makes a few
// requests against itself to demonstrate (including a request to the
// past), and exits.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/inversion"
	"repro/inversion/invfs"
)

func main() {
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 128})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("webmaster")
	if err := s.MkdirAll("/site"); err != nil {
		log.Fatal(err)
	}
	if err := s.WriteFile("/site/index.html",
		[]byte("<h1>Inversion, version 1</h1>\n"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	v1 := db.Manager().LastCommitTime()
	if err := s.WriteFile("/site/index.html",
		[]byte("<h1>Inversion, version 2 — now with time travel</h1>\n"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	// Current state at /.
	mux.Handle("/", http.FileServer(http.FS(invfs.New(s))))
	// Any historical state at /asof/<nanoseconds>/...
	mux.HandleFunc("/asof/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/asof/")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			http.Error(w, "usage: /asof/<timestamp>/path", http.StatusBadRequest)
			return
		}
		ts, err := strconv.ParseInt(rest[:slash], 10, 64)
		if err != nil {
			http.Error(w, "bad timestamp", http.StatusBadRequest)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = rest[slash:]
		http.FileServer(http.FS(invfs.NewAsOf(s, ts))).ServeHTTP(w, r2)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving the Inversion file system at %s\n\n", base)

	get := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-28s -> %s  %s", strings.TrimPrefix(url, base), resp.Status, body)
		fmt.Println()
	}

	get(base + "/site/index.html")
	get(fmt.Sprintf("%s/asof/%d/site/index.html", base, v1))
	get(base + "/site/missing.html")

	_ = srv.Close()
	fmt.Println("the same server, serving present and past from one database")
}
