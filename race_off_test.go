//go:build !race

package repro

// raceEnabled is false in non-race builds; see race_on_test.go.
const raceEnabled = false
