package repro

import (
	"testing"

	"repro/internal/bench"
)

// TestMetaScalingFloor guards the partitioned-namespace headline: on
// the metadata-storm workload (create/stat/rename from four concurrent
// clients over eight single-queue simulated spindles), an eight-way
// hash-partitioned namespace must reach at least twice the throughput
// of the unpartitioned one. The comparison is honest by construction —
// both shard counts run the identical op stream on the identical
// simulated hardware; N=1 simply cannot spread its one naming relation
// across more than one spindle queue. The shard-activity assertions
// make sure the win came from partitioning (traffic actually routed to
// ≥4 shards, and the directory-crossing renames really crossed shards)
// rather than from a degenerate hash. One retry absorbs CI scheduler
// noise — two consecutive sub-2x runs mean a real regression.
func TestMetaScalingFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("real-sleep scaling benchmark")
	}
	if raceEnabled {
		// The prepopulation (262k mkdirs across the two points) is
		// CPU-bound; under the race detector it alone exceeds the CI
		// race budget, and the inflated CPU share distorts the
		// sleep-overlap ratio this floor asserts. The sharded metadata
		// path stays race-covered by TestMetaPointSmoke (internal/bench),
		// the internal/core shard tests, and the namespace torture
		// workload.
		t.Skip("real-sleep scaling floor is asserted in the non-race run")
	}
	const opsPerG = 128
	run := func() (speedup float64, active int, cross int64) {
		pts, err := bench.RunMetaScaling(4, opsPerG, []int{1, 8})
		if err != nil {
			t.Fatal(err)
		}
		last := pts[len(pts)-1]
		for _, s := range last.Namespace {
			if s.Lookups > 0 || s.Inserts > 0 {
				active++
			}
			cross += s.CrossRenames
		}
		return last.Speedup, active, cross
	}
	s, active, cross := run()
	if s < 2.0 {
		t.Logf("meta n8/n1 g=4 speedup %.2fx < 2x, retrying once", s)
		s, active, cross = run()
	}
	if s < 2.0 {
		t.Fatalf("meta n8/n1 g=4 speedup %.2fx, want >= 2x", s)
	}
	if active < 4 {
		t.Fatalf("metadata traffic reached only %d of 8 shards", active)
	}
	if cross == 0 {
		t.Fatal("no cross-shard renames at N=8: the rename mix is not exercising the two-shard path")
	}
	t.Logf("meta n8/n1 g=4 speedup %.2fx; %d/8 shards active, %d cross-shard renames", s, active, cross)
}
