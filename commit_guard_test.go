package repro

import (
	"testing"

	"repro/internal/bench"
)

// TestCommitScalingFloor guards the group-commit headline: on the
// sync-dominated write-heavy workload, four concurrent committers must
// reach at least twice one committer's throughput, and they must get
// there by actually batching (mean timed batch size > 1, log forces
// saved). A solo run cannot pass by accident — without group commit
// every committer pays its own data flush + log force + two syncs and
// the curve stays flat. One retry absorbs CI scheduler noise — two
// consecutive sub-2x runs mean a real regression, not jitter.
func TestCommitScalingFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("real-sleep scaling benchmark")
	}
	const opsPerG = 24
	run := func() (speedup float64, batches, commits, saved int64) {
		pts, err := bench.RunScaling(bench.WorkloadWrite, []int{1, 4}, opsPerG)
		if err != nil {
			t.Fatal(err)
		}
		snap := pts[1].Obs
		for _, h := range snap.Hists {
			if h.Name == "txn.group_commit.batch_size" {
				batches, commits = h.Count, h.SumNs
			}
		}
		for _, c := range snap.Counters {
			if c.Name == "txn.group_commit.forces_saved" {
				saved = c.Value
			}
		}
		return pts[1].Speedup, batches, commits, saved
	}
	s, batches, commits, saved := run()
	if s < 2.0 {
		t.Logf("write-heavy g=4 speedup %.2fx < 2x, retrying once", s)
		s, batches, commits, saved = run()
	}
	if s < 2.0 {
		t.Fatalf("write-heavy g=4 speedup %.2fx, want >= 2x", s)
	}
	if batches == 0 || commits <= batches {
		t.Fatalf("no commit batching under load: %d commits in %d batches", commits, batches)
	}
	if saved <= 0 {
		t.Fatalf("group commit saved no forces (batches=%d commits=%d)", batches, commits)
	}
	t.Logf("write-heavy g=4 speedup %.2fx; %d commits in %d batches (mean %.2f), %d forces saved",
		s, commits, batches, float64(commits)/float64(batches), saved)
}
