package inversion_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/inversion"
)

// Concurrent stress over the public facade: several sessions hammer
// one database with a mix of creates, overwrites, reads, and directory
// listings. Every byte written is derived deterministically from
// (goroutine, iteration), so every read — both the goroutine's own
// read-back and the final single-threaded sweep — can be verified
// byte-exact. Run under -race in CI, this is the end-to-end check that
// the sharded buffer pool, read-shared indexes, and txn visibility
// cache keep their promises when actually raced.

func stressContent(g, k int) []byte {
	// Vary the length so files span one to several 4 KB chunks and
	// overwrites change size in both directions.
	n := 512 + ((g*7+k*13)%9)*1024
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(g*31 + k*17 + i)
	}
	return data
}

func stressSharedContent(j int) []byte {
	data := make([]byte, 6*1024)
	for i := range data {
		data[i] = byte(j*41 + i)
	}
	return data
}

// retryDeadlock runs op, retrying while it loses a deadlock. Autocommit
// operations abort their transaction on error, so a plain retry is safe.
func retryDeadlock(op func() error) error {
	for {
		err := op()
		if !errors.Is(err, inversion.ErrDeadlock) {
			return err
		}
	}
}

func TestPublicConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 12
		shared     = 6
	)
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 96})
	if err != nil {
		t.Fatal(err)
	}
	setup := db.NewSession("setup")
	if err := setup.Mkdir("/stress"); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < shared; j++ {
		path := fmt.Sprintf("/stress/shared-%d", j)
		if err := setup.WriteFile(path, stressSharedContent(j), inversion.CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}

	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = func() error {
				s := db.NewSession(fmt.Sprintf("stress-%d", g))
				for k := 0; k < iters; k++ {
					// Create (k==0) or overwrite a private file, read it
					// straight back, and verify byte-exact.
					path := fmt.Sprintf("/stress/g%d", g)
					want := stressContent(g, k)
					if err := retryDeadlock(func() error {
						return s.WriteFile(path, want, inversion.CreateOpts{})
					}); err != nil {
						return fmt.Errorf("write %s iter %d: %w", path, k, err)
					}
					got, err := s.ReadFile(path)
					if err != nil {
						return fmt.Errorf("read-back %s iter %d: %w", path, k, err)
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("read-back %s iter %d: %d bytes, want %d", path, k, len(got), len(want))
					}
					// Read a shared file someone else may be evicting.
					j := (g + k) % shared
					got, err = s.ReadFile(fmt.Sprintf("/stress/shared-%d", j))
					if err != nil {
						return fmt.Errorf("shared read %d iter %d: %w", j, k, err)
					}
					if !bytes.Equal(got, stressSharedContent(j)) {
						return fmt.Errorf("shared read %d iter %d: bytes differ", j, k)
					}
					// List the directory other goroutines are creating
					// into; our own file must be visible to us.
					entries, err := s.ReadDir("/stress")
					if err != nil {
						return fmt.Errorf("readdir iter %d: %w", k, err)
					}
					seen := false
					for _, e := range entries {
						if e.Name == fmt.Sprintf("g%d", g) {
							seen = true
						}
					}
					if !seen {
						return fmt.Errorf("readdir iter %d: own file missing", k)
					}
					// Every few iterations, create a fresh file too, so
					// directory inserts race with the listings above.
					if k%4 == 1 {
						extra := fmt.Sprintf("/stress/g%d-extra%d", g, k)
						if err := retryDeadlock(func() error {
							return s.WriteFile(extra, want[:256], inversion.CreateOpts{})
						}); err != nil {
							return fmt.Errorf("create %s: %w", extra, err)
						}
					}
				}
				return nil
			}()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Single-threaded sweep from a fresh session: final state of every
	// file must be byte-exact.
	check := db.NewSession("check")
	for j := 0; j < shared; j++ {
		got, err := check.ReadFile(fmt.Sprintf("/stress/shared-%d", j))
		if err != nil || !bytes.Equal(got, stressSharedContent(j)) {
			t.Fatalf("final shared-%d: %d bytes, err %v", j, len(got), err)
		}
	}
	for g := 0; g < goroutines; g++ {
		want := stressContent(g, iters-1)
		got, err := check.ReadFile(fmt.Sprintf("/stress/g%d", g))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("final g%d: %d bytes (want %d), err %v", g, len(got), len(want), err)
		}
		for k := 0; k < iters; k++ {
			if k%4 != 1 {
				continue
			}
			want := stressContent(g, k)[:256]
			got, err := check.ReadFile(fmt.Sprintf("/stress/g%d-extra%d", g, k))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("final g%d-extra%d: err %v", g, k, err)
			}
		}
	}
}
