package inversion_test

import (
	"fmt"
	"log"

	"repro/inversion"
)

// The basics: create a file inside a transaction and read it back.
func Example() {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")

	if err := s.Begin(); err != nil {
		log.Fatal(err)
	}
	f, err := s.Create("/hello.txt", inversion.CreateOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(f, "hello, inversion")
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}

	data, err := s.ReadFile("/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	// Output: hello, inversion
}

// Time travel: every committed state of a file remains readable.
func ExampleSession_ReadFileAsOf() {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")

	if err := s.WriteFile("/notes", []byte("draft"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}
	draftTime := db.Manager().LastCommitTime()
	if err := s.WriteFile("/notes", []byte("final version"), inversion.CreateOpts{}); err != nil {
		log.Fatal(err)
	}

	now, _ := s.ReadFile("/notes")
	then, _ := s.ReadFileAsOf("/notes", draftTime)
	fmt.Printf("now:  %s\n", now)
	fmt.Printf("then: %s\n", then)
	// Output:
	// now:  final version
	// then: draft
}

// An aborted transaction leaves no trace — the paper's multi-file
// check-in, rolled back.
func ExampleSession_Abort() {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")

	if err := s.Begin(); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"/a.c", "/b.c"} {
		if err := s.WriteFile(name, []byte("WIP"), inversion.CreateOpts{}); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Abort(); err != nil {
		log.Fatal(err)
	}

	_, err = s.Stat("/a.c")
	fmt.Println(err != nil)
	// Output: true
}

// User-defined functions run inside the data manager and are callable
// from queries.
func ExampleQueryEngine() {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := db.NewSession("mao")
	if err := inversion.RegisterStandardTypes(s); err != nil {
		log.Fatal(err)
	}
	err = s.WriteFile("/doc.txt", []byte("one\ntwo\nthree\n"),
		inversion.CreateOpts{Type: inversion.TypeASCII})
	if err != nil {
		log.Fatal(err)
	}

	eng := inversion.NewQueryEngine(db)
	res, err := eng.Run(s, `retrieve (filename, linecount(file)) where linecount(file) > 2`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s has %s lines\n", row[0], row[1])
	}
	// Output: doc.txt has 3 lines
}
