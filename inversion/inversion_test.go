package inversion_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/inversion"
)

// These tests exercise the public API exactly as a downstream user
// would, including the TCP client/server path.

func TestPublicQuickstartFlow(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("user")
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	f, err := s.Create("/hello", inversion.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/hello")
	if err != nil || string(got) != "world" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestPublicFileImplementsIOInterfaces(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("user")
	f, err := s.Create("/io", inversion.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Compile-time and runtime interface checks.
	var (
		_ io.Reader   = f
		_ io.Writer   = f
		_ io.Seeker   = f
		_ io.ReaderAt = f
		_ io.WriterAt = f
		_ io.Closer   = f
	)
	if _, err := io.Copy(f, bytes.NewReader(bytes.Repeat([]byte("go"), 1000))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := io.Copy(&out, f); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2000 {
		t.Fatalf("copied %d bytes", out.Len())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTimeTravelAndErrors(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("user")
	if err := s.WriteFile("/f", []byte("v1"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	if err := s.WriteFile("/f", []byte("v2"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	old, err := s.ReadFileAsOf("/f", before)
	if err != nil || string(old) != "v1" {
		t.Fatalf("asof: %q %v", old, err)
	}
	if _, err := s.Open("/nope"); !errors.Is(err, inversion.ErrNotExist) {
		t.Fatalf("missing file error: %v", err)
	}
	if _, err := s.Create("/f", inversion.CreateOpts{}); !errors.Is(err, inversion.ErrExist) {
		t.Fatalf("exists error: %v", err)
	}
	hist, err := s.OpenAsOf("/f", before)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.Write([]byte("x")); !errors.Is(err, inversion.ErrReadOnly) {
		t.Fatalf("historical write error: %v", err)
	}
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicServerClient(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inversion.RegisterStandardTypes(db.NewSession("setup")); err != nil {
		t.Fatal(err)
	}
	srv := inversion.NewServer(db)
	srv.SetLogf(func(string, ...any) {})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := inversion.Dial(addr, "remote-user")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fd, err := c.PCreat("/remote", inversion.CreateOpts{Type: inversion.TypeASCII})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("one\ntwo\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	v, err := c.Call("linecount", "/remote")
	if err != nil || v.I != 2 {
		t.Fatalf("remote linecount: %v %v", v, err)
	}
	res, err := c.Query(`retrieve (filename) where owner(file) = "remote-user"`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "remote" {
		t.Fatalf("remote query: %+v %v", res, err)
	}
}

func TestPublicDevicesAndMigration(t *testing.T) {
	clock := inversion.NewClock()
	sw := inversion.NewDeviceSwitch()
	sw.Register(inversion.NewDiskDevice(clock))
	sw.Register(inversion.NewJukeboxDevice(clock))
	sw.Register(inversion.NewMemDevice(nil, 0))
	if err := sw.SetDefault("disk"); err != nil {
		t.Fatal(err)
	}
	db, err := inversion.Open(sw, inversion.Options{DefaultClass: "disk", LogClass: "mem"})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("admin")
	if err := s.WriteFile("/big", make([]byte, 2<<20), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	re := inversion.NewRulesEngine(db)
	if err := re.Add(s, inversion.Rule{
		Name: "r", Where: "size(file) > 1000000", TargetClass: "jukebox",
	}); err != nil {
		t.Fatal(err)
	}
	moves, err := re.Apply(s)
	if err != nil || len(moves) != 1 {
		t.Fatalf("apply: %+v %v", moves, err)
	}
	if clock.Now() == 0 {
		t.Fatal("virtual clock never advanced")
	}
	data, err := s.ReadFile("/big")
	if err != nil || len(data) != 2<<20 {
		t.Fatalf("post-migration read: %d %v", len(data), err)
	}
}

func TestPublicUserDefinedFunction(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("dev")
	if err := s.DefineType("csv", "comma separated"); err != nil {
		t.Fatal(err)
	}
	err = s.DefineFunction(inversion.FuncInfo{Name: "cols", TypeName: "csv"},
		func(c *inversion.FuncCtx) (inversion.Value, error) {
			data, err := c.Contents()
			if err != nil {
				return inversion.NullValue(), err
			}
			first := data
			if i := bytes.IndexByte(data, '\n'); i >= 0 {
				first = data[:i]
			}
			return inversion.IntValue(int64(bytes.Count(first, []byte(",")) + 1)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/t.csv", []byte("a,b,c\n1,2,3\n"), inversion.CreateOpts{Type: "csv"}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Call("cols", "/t.csv")
	if err != nil || v.I != 3 {
		t.Fatalf("cols = %v %v", v, err)
	}
	eng := inversion.NewQueryEngine(db)
	res, err := eng.Run(s, `retrieve (filename) where cols(file) = 3`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query by UDF: %+v %v", res, err)
	}
}

func TestPublicSatelliteHelpers(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("sci")
	if err := inversion.RegisterStandardTypes(s); err != nil {
		t.Fatal(err)
	}
	img := inversion.GenerateScene(inversion.SatParams{Width: 10, Height: 10, SnowFraction: 0.5, Seed: 1})
	if err := s.WriteFile("/sc", img.Encode(), inversion.CreateOpts{Type: inversion.TypeTM}); err != nil {
		t.Fatal(err)
	}
	if _, err := inversion.GetPixel(s, "/sc", 0, 5, 5); err != nil {
		t.Fatal(err)
	}
	back, err := s.ReadFile("/sc")
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := inversion.DecodeScene(back)
	if !ok || dec.SnowCount() != img.SnowCount() {
		t.Fatal("scene round trip failed")
	}
}

func TestPublicConstants(t *testing.T) {
	if inversion.ChunkSize >= 8192 || inversion.ChunkSize < 8000 {
		t.Fatalf("ChunkSize = %d, want slightly smaller than 8K", inversion.ChunkSize)
	}
	// The paper's 17.6 TB figure (decimal terabytes: 2^31 chunks of
	// slightly under 8 KB).
	tb := float64(inversion.MaxFileSize) / 1e12
	if tb < 17 || tb > 18 {
		t.Fatalf("MaxFileSize = %.1f TB, want ~17.6", tb)
	}
}
