// Package inversion is the public API of the Inversion file system — a
// file system built on top of a database system, after Olson, "The
// Design and Implementation of the Inversion File System" (USENIX
// Winter 1993).
//
// Files live in database tables: every file's data is chunked into
// records in a uniquely named table with a B-tree on the chunk number,
// the namespace is the naming table, and attributes are the fileatt
// table. Because the storage manager never overwrites data and records
// every transaction's commit state and time, Inversion offers:
//
//   - transaction protection for file data and metadata (Begin /
//     Commit / Abort around any set of file operations),
//   - fine-grained time travel (OpenAsOf, StatAsOf, ReadDirAsOf —
//     the file system exactly as it was at any past instant),
//   - instant crash recovery (no fsck: uncommitted work is simply
//     invisible after restart),
//   - typed files with user-defined functions executed inside the data
//     manager, and
//   - ad hoc POSTQUEL queries over names, metadata, and file contents.
//
// # Quick start
//
//	sw := inversion.NewDeviceSwitch()
//	sw.Register(inversion.NewMemDevice(nil, 0))
//	db, err := inversion.Open(sw, inversion.Options{})
//	...
//	s := db.NewSession("mao")
//	s.Begin()
//	f, _ := s.Create("/hello", inversion.CreateOpts{})
//	f.Write([]byte("world"))
//	f.Close()
//	s.Commit()
//
// See the runnable programs under examples/ for transactions, time
// travel, typed satellite images, queries, and rules-driven migration.
package inversion

import (
	"io"
	"net/http"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/satgen"
	"repro/internal/txn"
	"repro/internal/typefuncs"
	"repro/internal/value"
	"repro/internal/wire"
)

// Core types.
type (
	// DB is one Inversion database (a mount point rooted at "/").
	DB = core.DB
	// Session is one client with at most one active transaction.
	Session = core.Session
	// File is an open file implementing io.Reader/Writer/Seeker/
	// ReaderAt/WriterAt/Closer.
	File = core.File
	// FileAttr is a row of the fileatt table.
	FileAttr = core.FileAttr
	// DirEntry is one directory listing row.
	DirEntry = core.DirEntry
	// CreateOpts selects a new file's type, device class, and flags.
	CreateOpts = core.CreateOpts
	// Options configures Open.
	Options = core.Options
	// Value is a dynamically typed query/function result.
	Value = value.V
	// FileFunc is a user-defined function run inside the data manager.
	FileFunc = core.FileFunc
	// FuncCtx is the evaluation context handed to a FileFunc.
	FuncCtx = core.FuncCtx
	// VacuumStats summarises a vacuum pass.
	VacuumStats = core.VacuumStats
	// TypeValidator is an integrity rule run when a file of its type is
	// closed after writing; a violation aborts the transaction.
	TypeValidator = core.TypeValidator
	// MediaReport summarises a CheckMedia scrub pass.
	MediaReport = core.MediaReport
	// ScrubReport is the result of DB.Scrub, the full integrity pass:
	// media, B-tree structure, namespace cross-links, chunk records,
	// and the transaction log.
	ScrubReport = core.ScrubReport
)

// Device layer types.
type (
	// DeviceSwitch routes relations to device managers.
	DeviceSwitch = device.Switch
	// DeviceManager is one entry in the device switch.
	DeviceManager = device.Manager
	// JukeboxParams configures the WORM jukebox simulator.
	JukeboxParams = device.JukeboxParams
	// Clock is the virtual clock cost models charge to.
	Clock = iosim.Clock
	// DiskParams is the mechanical model of a simulated disk.
	DiskParams = iosim.DiskParams
)

// Wire (client/server) types.
type (
	// Server serves the Inversion protocol over TCP.
	Server = wire.Server
	// ServerConfig tunes the server's connection lifecycle: idle-session
	// reaping, shutdown grace period, and write deadlines.
	ServerConfig = wire.ServerConfig
	// Client is the special library programs link to reach a server.
	Client = wire.Client
	// DialConfig configures a reconnecting client: dial/call timeouts
	// and reconnect backoff.
	DialConfig = wire.DialConfig
	// RemoteError is an error reported by a server over the wire.
	RemoteError = wire.RemoteError
	// FD is a remote file descriptor.
	FD = wire.FD
)

// Wire lifecycle defaults.
const (
	// DefaultIdleTimeout is the server's default idle-transaction reap
	// threshold.
	DefaultIdleTimeout = wire.DefaultIdleTimeout
	// DefaultGracePeriod is the server's default shutdown drain budget.
	DefaultGracePeriod = wire.DefaultGracePeriod
)

// Observability types.
type (
	// MetricsRegistry is the per-database registry of counters, gauges,
	// and latency histograms every storage layer records into; reach it
	// via DB.Obs().
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry (what the
	// statsv2 wire op carries and Client.StatsV2 returns).
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is one latency distribution in a snapshot, with
	// Quantile for p50/p95/p99 extraction.
	HistogramSnapshot = obs.HistogramSnapshot
	// SpanData is one finished request trace: per-layer latency
	// attribution plus txn/relation annotations.
	SpanData = obs.SpanData
	// TraceRing keeps the slowest recent request traces; reach a
	// server's via Server.Traces().
	TraceRing = obs.TraceRing
	// WaitProfile is the sampled wait-event profile (where goroutines
	// block, by event, op, and relation); reach a database's via
	// DB.WaitProfile() or a served one's via Client.WaitProfile().
	WaitProfile = obs.WaitProfile
	// WaitProfileRow is one (class, event, op, relation) wait bucket.
	WaitProfileRow = obs.WaitProfileRow
	// FlightBundle is a dumped flight-recorder snapshot: the recent
	// span/wait/lifecycle timeline plus an optional wait profile.
	FlightBundle = obs.FlightBundle
	// HistorySample is one recorded metrics-history point (counter
	// delta, gauge point, or histogram quantile).
	HistorySample = obs.HistorySample
	// HistoryDiffer converts successive registry snapshots into
	// per-tick samples — the recorder's diffing layer, reusable by
	// monitors (invtop) that want the same delta view of live data.
	HistoryDiffer = obs.HistoryDiffer
	// HistoryBudget is the retention ladder for recorded history
	// (Options.HistoryBudget; zero values select the defaults).
	HistoryBudget = core.HistoryBudget
	// RegressionResult is DB.CheckRegression's verdict on one series.
	RegressionResult = core.RegressionResult
)

// NewHistoryDiffer returns a differ with no previous tick.
func NewHistoryDiffer() *HistoryDiffer { return obs.NewHistoryDiffer() }

// ErrHistoryDisabled is returned by metrics-history APIs when the
// database was opened without Options.MetricsHistory.
var ErrHistoryDisabled = core.ErrHistoryDisabled

// Names of the stored metrics-history relations (queryable with the
// ordinary retrieve path, including asof, once history is enabled).
const (
	HistoryRelName        = core.HistoryRelName
	HistorySamplesRelName = core.HistorySamplesRelName
)

// DefaultWaitSamplingInterval is the sampler interval the daemon uses
// when wait sampling is enabled without an explicit interval.
const DefaultWaitSamplingInterval = obs.DefaultWaitSamplingInterval

// DumpFlight writes the process's flight-recorder bundle (version,
// reason, recent timeline, optional wait profile) as indented JSON.
func DumpFlight(w io.Writer, reason string, profile *WaitProfile) error {
	return obs.Flight().WriteBundle(w, reason, profile)
}

// ParseFlightBundle decodes a bundle produced by DumpFlight (or the
// daemon's /debug/flight endpoint and crash dumps).
func ParseFlightBundle(b []byte) (FlightBundle, error) {
	return obs.ParseFlightBundle(b)
}

// FormatMetrics renders a snapshot for terminals: stable sorted
// counters and gauges, then one line per histogram with count, mean,
// and p50/p95/p99 (per-shard series merged).
func FormatMetrics(s MetricsSnapshot) string { return obs.FormatText(s) }

// NewMetricsHandler returns the operational HTTP endpoint for a served
// database: Prometheus text at /metrics, Go profiles under
// /debug/pprof/, and the slowest recent request traces as JSON at
// /traces/recent. srv may be nil (no trace ring, /traces/recent 404s).
func NewMetricsHandler(db *DB, srv *Server) http.Handler {
	var ring *obs.TraceRing
	if srv != nil {
		ring = srv.Traces()
	}
	return obs.Handler(db.Obs(), ring, db.RefreshObsGauges)
}

// Query and rules types.
type (
	// QueryEngine executes POSTQUEL-subset statements.
	QueryEngine = query.Engine
	// QueryResult is a query result set.
	QueryResult = query.Result
	// RulesEngine applies migration rules.
	RulesEngine = rules.Engine
	// Rule is one migration policy.
	Rule = rules.Rule
	// Migration records one rules-driven file move.
	Migration = rules.Migration
)

// Constants.
const (
	// ChunkSize is the number of file bytes per chunk record ("chunks
	// slightly smaller than 8 KBytes").
	ChunkSize = core.ChunkSize
	// MaxFileSize is 17.6 TB, the paper's file size limit.
	MaxFileSize = core.MaxFileSize
	// FlagCompressed stores a file's chunks compressed with per-chunk
	// size indices for random access.
	FlagCompressed = core.FlagCompressed
	// FlagNoHistory lets the vacuum cleaner discard a file's old
	// versions instead of archiving them.
	FlagNoHistory = core.FlagNoHistory
	// TypeDirectory is the type of directories.
	TypeDirectory = core.TypeDirectory
)

// Errors.
var (
	ErrNotExist     = core.ErrNotExist
	ErrExist        = core.ErrExist
	ErrIsDirectory  = core.ErrIsDirectory
	ErrNotDirectory = core.ErrNotDirectory
	ErrNotEmpty     = core.ErrNotEmpty
	ErrReadOnly     = core.ErrReadOnly
	ErrHistoricalWr = core.ErrHistoricalWr
	ErrClosed       = core.ErrClosed
	ErrNoFunction   = core.ErrNoFunction
	ErrTypeMismatch = core.ErrTypeMismatch
	// ErrDeadlock is returned to one participant of a lock cycle; its
	// transaction should abort and may retry. A server surfaces it over
	// the wire so errors.Is works on remote clients too.
	ErrDeadlock = txn.ErrDeadlock
	// ErrReaped is returned by Commit/Abort after the server's idle
	// reaper aborted the session's transaction; re-run the transaction.
	ErrReaped = core.ErrReaped
	// ErrConnLost is wrapped by client calls that lost the server
	// connection and could not safely retry; if a transaction was open
	// it has been aborted server-side and should be re-run.
	ErrConnLost = wire.ErrConnLost
)

// Open opens (or bootstraps) a database over a device switch.
func Open(sw *DeviceSwitch, opts Options) (*DB, error) { return core.Open(sw, opts) }

// OpenMemory opens a fresh all-in-memory database, the quickest way to
// try the system.
func OpenMemory(opts Options) (*DB, error) {
	sw := NewDeviceSwitch()
	sw.Register(NewMemDevice(nil, 0))
	return core.Open(sw, opts)
}

// NewDeviceSwitch returns an empty device manager switch.
func NewDeviceSwitch() *DeviceSwitch { return device.NewSwitch() }

// NewClock returns a virtual clock for simulated device timing.
func NewClock() *Clock { return iosim.NewClock() }

// NewMemDevice returns a non-volatile RAM device manager. clock may be
// nil to disable cost accounting.
func NewMemDevice(clock *Clock, latency time.Duration) DeviceManager {
	return device.NewMem(clock, latency)
}

// NewDiskDevice returns a magnetic disk manager with RZ58-like
// mechanics charged to clock (nil disables accounting).
func NewDiskDevice(clock *Clock) DeviceManager {
	return device.NewDisk(iosim.NewDisk(iosim.RZ58(), clock), device.DefaultExtentPages)
}

// NewJukeboxDevice returns a Sony WORM optical jukebox manager with a
// magnetic-disk staging cache.
func NewJukeboxDevice(clock *Clock) DeviceManager {
	return device.NewJukebox(device.DefaultJukebox(), clock)
}

// FileDiskDevice is a disk manager backed by a real file on the host,
// making the database durable across process restarts.
type FileDiskDevice = device.FileDisk

// OpenFileDisk opens (or creates) a persistent disk at path. clock may
// be nil; with a clock the persistent disk still charges RZ58-style
// virtual time.
func OpenFileDisk(path string, clock *Clock) (*FileDiskDevice, error) {
	var model *iosim.Disk
	if clock != nil {
		model = iosim.NewDisk(iosim.RZ58(), clock)
	}
	return device.OpenFileDisk(path, model, device.DefaultExtentPages)
}

// OpenPersistent opens (or creates) a durable database whose relations,
// transaction logs, and catalog all live in one backing file at path.
// Close the DB (flushing it) and then the returned disk when done.
func OpenPersistent(path string, opts Options) (*DB, *FileDiskDevice, error) {
	fd, err := OpenFileDisk(path, nil)
	if err != nil {
		return nil, nil, err
	}
	sw := NewDeviceSwitch()
	sw.Register(fd)
	opts.LogClass = "disk"
	if opts.DefaultClass == "" {
		opts.DefaultClass = "disk"
	}
	db, err := Open(sw, opts)
	if err != nil {
		fd.Close()
		return nil, nil, err
	}
	return db, fd, nil
}

// NewQueryEngine returns a POSTQUEL engine over db.
func NewQueryEngine(db *DB) *QueryEngine { return query.New(db) }

// NewRulesEngine returns a migration rules engine over db.
func NewRulesEngine(db *DB) *RulesEngine { return rules.New(db) }

// NewServer returns a TCP server for db; call Listen to start it.
func NewServer(db *DB) *Server { return wire.NewServer(db) }

// NewServerWith returns a TCP server for db with explicit lifecycle
// settings (idle-transaction reaping, shutdown grace period).
func NewServerWith(db *DB, cfg ServerConfig) *Server { return wire.NewServerWith(db, cfg) }

// Dial connects to a server as the given owner. The client does not
// reconnect; use DialWithConfig for one that does.
func Dial(addr, owner string) (*Client, error) { return wire.Dial(addr, owner) }

// DialWithConfig connects with explicit timeouts and automatic
// reconnection (exponential backoff with jitter). Only operations that
// are safe to repeat are retried; see the wire package documentation.
func DialWithConfig(cfg DialConfig) (*Client, error) { return wire.DialWithConfig(cfg) }

// RegisterStandardTypes defines the paper's Table 2 file types and
// classification functions (ASCII/troff documents, CZCS and Thematic
// Mapper satellite images with linecount, keywords, snow, …).
func RegisterStandardTypes(s *Session) error { return typefuncs.RegisterAll(s) }

// RegisterStandardValidators installs integrity rules for the image
// types: a transaction that tries to commit a structurally invalid
// satellite image is aborted ("Consistency Guarantees"). Opt-in,
// because it changes write semantics.
func RegisterStandardValidators(s *Session) { typefuncs.RegisterValidators(s) }

// Standard type names installed by RegisterStandardTypes.
const (
	TypeASCII = typefuncs.TypeASCII
	TypeTroff = typefuncs.TypeTroff
	TypeCZCS  = typefuncs.TypeCZCS
	TypeTM    = typefuncs.TypeTM
)

// Satellite image support (the synthetic Thematic Mapper scenes that
// stand in for the Sequoia 2000 data).
type (
	// SatImage is a decoded multi-band satellite scene.
	SatImage = satgen.Image
	// SatParams configures synthetic scene generation.
	SatParams = satgen.Params
)

// GenerateScene builds a synthetic satellite scene with a planted snow
// fraction.
func GenerateScene(p SatParams) *SatImage { return satgen.Generate(p) }

// DecodeScene parses an encoded satellite scene.
func DecodeScene(data []byte) (*SatImage, bool) { return satgen.Decode(data) }

// GetPixel reads one pixel of a stored scene.
func GetPixel(s *Session, path string, band, x, y int) (byte, error) {
	return typefuncs.GetPixel(s, path, band, x, y)
}

// GetBand reads one band of a stored scene.
func GetBand(s *Session, path string, band int) ([]byte, error) {
	return typefuncs.GetBand(s, path, band)
}

// FuncInfo declares a function over a file type.
type FuncInfo = catalog.FuncInfo

// Value constructors for user-defined functions.

// IntValue returns an integer Value.
func IntValue(i int64) Value { return value.Int(i) }

// FloatValue returns a floating-point Value.
func FloatValue(f float64) Value { return value.Float(f) }

// StrValue returns a string Value.
func StrValue(s string) Value { return value.Str(s) }

// BoolValue returns a boolean Value.
func BoolValue(b bool) Value { return value.Bool(b) }

// ListValue returns a list-of-strings Value.
func ListValue(l []string) Value { return value.List(l) }

// NullValue returns the null Value.
func NullValue() Value { return value.Null() }
