package inversion_test

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/inversion"
)

// TestMetricsExposeNamespaceShards scrapes /metrics on a partitioned
// volume and checks the per-shard namespace gauges are served the way
// an operator's dashboard would read them: the shard count, one gauge
// series per shard, and non-zero routing traffic spread over more than
// one shard after a burst of metadata operations.
func TestMetricsExposeNamespaceShards(t *testing.T) {
	db, err := inversion.OpenMemory(inversion.Options{NamespaceShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("metrics")
	for d := 0; d < 4; d++ {
		dir := fmt.Sprintf("/md%d", d)
		if err := s.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteFile(dir+"/f", []byte("m"), inversion.CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rename("/md0/f", "/md2/g"); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	inversion.NewMetricsHandler(db, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	if !strings.Contains(body, "inv_namespace_shards 4") {
		t.Fatalf("/metrics missing inv_namespace_shards 4:\n%s", body)
	}
	for shard := 0; shard < 4; shard++ {
		for _, series := range []string{"lookups", "inserts", "renames", "cross_renames", "lock_waits"} {
			name := fmt.Sprintf("inv_namespace_shard%d_%s", shard, series)
			if !strings.Contains(body, name+" ") {
				t.Errorf("/metrics missing gauge %s", name)
			}
		}
	}
	// The burst above must show up as inserts on more than one shard —
	// gauges that exist but never move are just decoration.
	re := regexp.MustCompile(`inv_namespace_shard\d+_inserts (\d+)`)
	active := 0
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		if m[1] != "0" {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("namespace inserts visible on %d shards, want >= 2:\n%s", active, body)
	}
}
