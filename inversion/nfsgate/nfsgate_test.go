package nfsgate

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/inversion"
)

func newGateway(t *testing.T) (*inversion.DB, *Gateway) {
	t.Helper()
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 128})
	if err != nil {
		t.Fatal(err)
	}
	return db, New(db, "nfs-client")
}

func TestStatelessFileLifecycle(t *testing.T) {
	_, g := newGateway(t)
	if err := g.Mkdir("/export"); err != nil {
		t.Fatal(err)
	}
	if err := g.Create("/export/f"); err != nil {
		t.Fatal(err)
	}
	if err := g.Write("/export/f", 0, []byte("written over nfs")); err != nil {
		t.Fatal(err)
	}
	got, err := g.Read("/export/f", 8, 8)
	if err != nil || string(got) != "over nfs" {
		t.Fatalf("read: %q %v", got, err)
	}
	a, err := g.GetAttr("/export/f")
	if err != nil || a.Size != 16 || a.IsDir {
		t.Fatalf("attr: %+v %v", a, err)
	}
	entries, err := g.ReadDir("/export")
	if err != nil || len(entries) != 1 || entries[0].Name != "f" {
		t.Fatalf("readdir: %+v %v", entries, err)
	}
	if err := g.Rename("/export/f", "/export/g"); err != nil {
		t.Fatal(err)
	}
	if err := g.Truncate("/export/g", 7); err != nil {
		t.Fatal(err)
	}
	if a, _ := g.GetAttr("/export/g"); a.Size != 7 {
		t.Fatalf("size after truncate: %d", a.Size)
	}
	if err := g.Remove("/export/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Lookup("/export/g"); !errors.Is(err, inversion.ErrNotExist) {
		t.Fatalf("lookup removed: %v", err)
	}
}

func TestEveryWriteIsAtomicAndDurable(t *testing.T) {
	// Every gateway write commits before returning: a crash right
	// after a Write reply must preserve it (the stateless-server
	// guarantee NFS requires).
	db, g := newGateway(t)
	if err := g.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := g.Write("/f", 0, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	db2, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(db2, "nfs-client").Read("/f", 0, 10)
	if err != nil || string(got) != "stable" {
		t.Fatalf("after crash: %q %v", got, err)
	}
}

func TestTimeTravelFcntl(t *testing.T) {
	db, g := newGateway(t)
	if err := g.Create("/tt"); err != nil {
		t.Fatal(err)
	}
	if err := g.Write("/tt", 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	if err := g.Truncate("/tt", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Write("/tt", 0, []byte("second, longer")); err != nil {
		t.Fatal(err)
	}
	old, err := g.ReadAsOf("/tt", 0, 16, before)
	if err != nil || string(old) != "first" {
		t.Fatalf("ReadAsOf: %q %v", old, err)
	}
	a, err := g.GetAttrAsOf("/tt", before)
	if err != nil || a.Size != 5 {
		t.Fatalf("GetAttrAsOf: %+v %v", a, err)
	}
	// Historical directory listing.
	if err := g.Create("/later"); err != nil {
		t.Fatal(err)
	}
	then, err := g.ReadDirAsOf("/", before)
	if err != nil || len(then) != 1 || then[0].Name != "tt" {
		t.Fatalf("ReadDirAsOf: %+v %v", then, err)
	}
}

func TestReadPastEOF(t *testing.T) {
	_, g := newGateway(t)
	if err := g.Create("/short"); err != nil {
		t.Fatal(err)
	}
	if err := g.Write("/short", 0, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read("/short", 100, 10); err != io.EOF {
		t.Fatalf("read past EOF: %v", err)
	}
	// Short read at the boundary.
	got, err := g.Read("/short", 1, 10)
	if err != nil || string(got) != "b" {
		t.Fatalf("boundary read: %q %v", got, err)
	}
}

func TestConcurrentStatelessClients(t *testing.T) {
	// Many goroutines acting as independent NFS clients; per-op
	// transactions must serialise cleanly under 2PL with no deadlocks
	// (single-lock operations cannot cycle).
	_, g := newGateway(t)
	if err := g.Mkdir("/shared"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			path := []byte{'/', 's', 'h', 'a', 'r', 'e', 'd', '/', byte('a' + c)}
			p := string(path)
			if err := g.Create(p); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				if err := g.Write(p, int64(i*10), bytes.Repeat([]byte{byte(c)}, 10)); err != nil {
					errs <- err
					return
				}
				if _, err := g.Read(p, 0, 10); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	entries, err := g.ReadDir("/shared")
	if err != nil || len(entries) != 8 {
		t.Fatalf("final listing: %d entries, %v", len(entries), err)
	}
	for _, e := range entries {
		if e.Attr.Size != 200 {
			t.Fatalf("%s size = %d", e.Name, e.Attr.Size)
		}
	}
}
