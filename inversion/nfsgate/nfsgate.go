// Package nfsgate implements the NFS-style access path the paper
// planned: "In the near term, we plan to provide NFS access to
// Inversion. … The NFS protocol makes every operation an atomic
// transaction, which severely limits the utility of transactions in
// Inversion. We are most likely to follow the protocol specification,
// and to provide no multi-operation transaction protection for
// Inversion files accessed via NFS."
//
// Accordingly the Gateway is stateless: every operation is its own
// committed transaction, file handles are just paths, and there is no
// Begin/Commit surface. The paper also planned "new fcntl() support to
// provide access to time travel and very large files"; the *AsOf
// variants are that hook.
package nfsgate

import (
	"errors"
	"io"

	"repro/internal/core"
)

// Attr is the subset of attributes an NFS GETATTR returns.
type Attr struct {
	Size  int64
	IsDir bool
	Owner string
	Type  string
	CTime int64
	MTime int64
}

// Entry is one READDIR row.
type Entry struct {
	Name string
	Attr Attr
}

// Gateway serves stateless, per-operation-atomic access to a database.
// It is safe for concurrent use: every call runs its own transaction.
type Gateway struct {
	db    *core.DB
	owner string
}

// New returns a gateway acting as the given owner (NFS servers map
// client credentials; this simulation uses one identity).
func New(db *core.DB, owner string) *Gateway {
	return &Gateway{db: db, owner: owner}
}

// session builds a throwaway session; gateways keep no client state.
func (g *Gateway) session() *core.Session { return g.db.NewSession(g.owner) }

func attrOf(a core.FileAttr) Attr {
	return Attr{
		Size: a.Size, IsDir: a.IsDir(), Owner: a.Owner, Type: a.Type,
		CTime: a.CTime, MTime: a.MTime,
	}
}

// GetAttr is NFS GETATTR.
func (g *Gateway) GetAttr(path string) (Attr, error) {
	a, err := g.session().Stat(path)
	if err != nil {
		return Attr{}, err
	}
	return attrOf(a), nil
}

// GetAttrAsOf is the time-travel fcntl: attributes as of a past
// instant.
func (g *Gateway) GetAttrAsOf(path string, asof int64) (Attr, error) {
	a, err := g.session().StatAsOf(path, asof)
	if err != nil {
		return Attr{}, err
	}
	return attrOf(a), nil
}

// Lookup resolves a path, NFS LOOKUP-style (existence + attributes).
func (g *Gateway) Lookup(path string) (Attr, error) { return g.GetAttr(path) }

// Create makes an empty file (exclusive). One transaction.
func (g *Gateway) Create(path string) error {
	s := g.session()
	f, err := s.Create(path, core.CreateOpts{})
	if err != nil {
		return err
	}
	return f.Close()
}

// Mkdir is NFS MKDIR.
func (g *Gateway) Mkdir(path string) error { return g.session().Mkdir(path) }

// Remove is NFS REMOVE / RMDIR.
func (g *Gateway) Remove(path string) error { return g.session().Unlink(path) }

// Rename is NFS RENAME.
func (g *Gateway) Rename(oldPath, newPath string) error {
	return g.session().Rename(oldPath, newPath)
}

// Read is NFS READ: up to n bytes at off. Each call is one (read-only)
// transaction; io.EOF is reported past end of file.
func (g *Gateway) Read(path string, off int64, n int) ([]byte, error) {
	s := g.session()
	f, err := s.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	got, rerr := f.ReadAt(buf, off)
	cerr := f.Close()
	if rerr != nil && rerr != io.EOF {
		return nil, errors.Join(rerr, cerr)
	}
	if cerr != nil {
		return nil, cerr
	}
	if got == 0 && n > 0 {
		return nil, io.EOF
	}
	return buf[:got], nil
}

// ReadAsOf is Read against a historical snapshot (the time-travel
// fcntl applied to data).
func (g *Gateway) ReadAsOf(path string, off int64, n int, asof int64) ([]byte, error) {
	f, err := g.db.OpenAsOf(path, asof)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	got, rerr := f.ReadAt(buf, off)
	cerr := f.Close()
	if rerr != nil && rerr != io.EOF {
		return nil, errors.Join(rerr, cerr)
	}
	if cerr != nil {
		return nil, cerr
	}
	if got == 0 && n > 0 {
		return nil, io.EOF
	}
	return buf[:got], nil
}

// Write is NFS WRITE: data at off, committed before the reply — "NFS
// must force every write to stable storage synchronously". The commit's
// page forcing is exactly that synchronous force.
func (g *Gateway) Write(path string, off int64, data []byte) error {
	s := g.session()
	f, err := s.OpenWrite(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		ferr := f.Close()
		return errors.Join(err, ignoreClosed(ferr))
	}
	return f.Close()
}

// Truncate is NFS SETATTR with a size.
func (g *Gateway) Truncate(path string, size int64) error {
	s := g.session()
	f, err := s.OpenWrite(path)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		ferr := f.Close()
		return errors.Join(err, ignoreClosed(ferr))
	}
	return f.Close()
}

// ReadDir is NFS READDIRPLUS (names with attributes).
func (g *Gateway) ReadDir(path string) ([]Entry, error) {
	entries, err := g.session().ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Name: e.Name, Attr: attrOf(e.Attr)}
	}
	return out, nil
}

// ReadDirAsOf lists a directory as of a past instant; this is how an
// NFS server "could manage time travel by extending the file system
// namespace and passing dates along to the database system" [ROOM92].
func (g *Gateway) ReadDirAsOf(path string, asof int64) ([]Entry, error) {
	entries, err := g.session().ReadDirAsOf(path, asof)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Name: e.Name, Attr: attrOf(e.Attr)}
	}
	return out, nil
}

func ignoreClosed(err error) error {
	if errors.Is(err, core.ErrClosed) {
		return nil
	}
	return err
}
