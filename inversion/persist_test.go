package inversion_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/inversion"
)

// TestPersistentDatabaseSurvivesRestart is the full durability story: a
// database in one backing file, closed, reopened by a "new process"
// (fresh switch, fresh everything), with all committed state — data,
// directories, types, history — intact.
func TestPersistentDatabaseSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inversion.db")

	// First process.
	db, fd, err := inversion.OpenPersistent(path, inversion.Options{Buffers: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("mao")
	if err := inversion.RegisterStandardTypes(s); err != nil {
		t.Fatal(err)
	}
	if err := s.MkdirAll("/projects/sequoia"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("durable "), 3000) // multi-chunk
	if err := s.WriteFile("/projects/sequoia/data", data, inversion.CreateOpts{Type: inversion.TypeASCII}); err != nil {
		t.Fatal(err)
	}
	v1 := db.Manager().LastCommitTime()
	if err := s.WriteFile("/projects/sequoia/data", []byte("rewritten"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process.
	db2, fd2, err := inversion.OpenPersistent(path, inversion.Options{Buffers: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close()
	s2 := db2.NewSession("mao")

	got, err := s2.ReadFile("/projects/sequoia/data")
	if err != nil || string(got) != "rewritten" {
		t.Fatalf("current after restart: %q %v", got, err)
	}
	// Even time travel survives the restart: commit times are in the
	// persistent logs and old chunk versions in the persistent heaps.
	old, err := s2.ReadFileAsOf("/projects/sequoia/data", v1)
	if err != nil || !bytes.Equal(old, data) {
		t.Fatalf("history after restart: %d bytes, %v", len(old), err)
	}
	// Types persisted through the catalog.
	if _, ok := db2.Catalog().Type(inversion.TypeASCII); !ok {
		t.Fatal("types lost across restart")
	}
	entries, err := s2.ReadDir("/projects")
	if err != nil || len(entries) != 1 || entries[0].Name != "sequoia" {
		t.Fatalf("directories after restart: %+v %v", entries, err)
	}
	// New work continues normally, with fresh OIDs.
	if err := s2.WriteFile("/post-restart", []byte("new era"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// And the medium scrubs clean.
	rep, err := db2.CheckMedia()
	if err != nil || !rep.OK() {
		t.Fatalf("scrub after restart: %+v %v", rep.Corrupt, err)
	}
}

// TestPersistentCrashWithoutClose: committed transactions survive even
// if the process dies without calling Close — commit itself forced the
// pages and synced the backing file.
func TestPersistentCrashWithoutClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inversion.db")
	db, fd, err := inversion.OpenPersistent(path, inversion.Options{Buffers: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("mao")
	if err := s.WriteFile("/committed", []byte("safe"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// An uncommitted transaction in flight at the "crash".
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/uncommitted", []byte("doomed"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Process dies: no db.Close, just drop everything and close the fd
	// so the file can be reopened.
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}

	db2, fd2, err := inversion.OpenPersistent(path, inversion.Options{Buffers: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close()
	s2 := db2.NewSession("mao")
	got, err := s2.ReadFile("/committed")
	if err != nil || string(got) != "safe" {
		t.Fatalf("committed data after crash: %q %v", got, err)
	}
	if _, err := s2.Stat("/uncommitted"); !errors.Is(err, inversion.ErrNotExist) {
		t.Fatalf("uncommitted file visible after crash: %v", err)
	}
}
