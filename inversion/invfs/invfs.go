// Package invfs adapts an Inversion session to Go's io/fs interfaces,
// so standard tooling — fs.WalkDir, io/fs-based servers, fstest — works
// directly against the database-backed file system. Because Inversion
// snapshots are first-class, the adapter can also present the file
// system as of any past instant: FSAsOf returns an fs.FS view of
// history.
package invfs

import (
	"errors"
	"io"
	"io/fs"
	"path"
	"time"

	"repro/internal/core"
)

// FS presents a session's current view as an fs.FS. It implements
// fs.FS, fs.ReadDirFS, and fs.StatFS.
type FS struct {
	s    *core.Session
	asof int64
}

// New returns an fs.FS over the session's current state.
func New(s *core.Session) *FS { return &FS{s: s} }

// NewAsOf returns an fs.FS over the file system as it was at time asof
// (nanoseconds, as recorded by commit timestamps).
func NewAsOf(s *core.Session, asof int64) *FS { return &FS{s: s, asof: asof} }

// abs converts an io/fs name (relative, "." for root) to an Inversion
// absolute path.
func abs(name string) (string, error) {
	if !fs.ValidPath(name) {
		return "", fs.ErrInvalid
	}
	if name == "." {
		return "/", nil
	}
	return "/" + name, nil
}

func mapErr(op, name string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrNotExist) {
		err = fs.ErrNotExist
	}
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// Open implements fs.FS.
func (f *FS) Open(name string) (fs.File, error) {
	p, err := abs(name)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	attr, err := f.stat(p)
	if err != nil {
		return nil, mapErr("open", name, err)
	}
	base := path.Base(name)
	if name == "." {
		base = "."
	}
	if attr.IsDir() {
		entries, err := f.readDir(p)
		if err != nil {
			return nil, mapErr("open", name, err)
		}
		return &dirFile{info: info{base, attr}, entries: entries}, nil
	}
	var fh *core.File
	if f.asof != 0 {
		fh, err = f.s.OpenAsOf(p, f.asof)
	} else {
		fh, err = f.s.Open(p)
	}
	if err != nil {
		return nil, mapErr("open", name, err)
	}
	return &file{info: info{base, attr}, f: fh}, nil
}

func (f *FS) stat(p string) (core.FileAttr, error) {
	if f.asof != 0 {
		return f.s.StatAsOf(p, f.asof)
	}
	return f.s.Stat(p)
}

func (f *FS) readDir(p string) ([]core.DirEntry, error) {
	if f.asof != 0 {
		return f.s.ReadDirAsOf(p, f.asof)
	}
	return f.s.ReadDir(p)
}

// Stat implements fs.StatFS.
func (f *FS) Stat(name string) (fs.FileInfo, error) {
	p, err := abs(name)
	if err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	attr, err := f.stat(p)
	if err != nil {
		return nil, mapErr("stat", name, err)
	}
	base := path.Base(name)
	if name == "." {
		base = "."
	}
	return info{base, attr}, nil
}

// ReadDir implements fs.ReadDirFS.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	p, err := abs(name)
	if err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	entries, err := f.readDir(p)
	if err != nil {
		return nil, mapErr("readdir", name, err)
	}
	out := make([]fs.DirEntry, len(entries))
	for i, e := range entries {
		out[i] = dirEntry{info{e.Name, e.Attr}}
	}
	return out, nil
}

// info adapts FileAttr to fs.FileInfo.
type info struct {
	name string
	attr core.FileAttr
}

func (i info) Name() string { return i.name }
func (i info) Size() int64  { return i.attr.Size }
func (i info) Mode() fs.FileMode {
	if i.attr.IsDir() {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i info) ModTime() time.Time { return time.Unix(0, i.attr.MTime) }
func (i info) IsDir() bool        { return i.attr.IsDir() }
func (i info) Sys() any           { return i.attr }

// dirEntry adapts a directory row to fs.DirEntry.
type dirEntry struct{ i info }

func (d dirEntry) Name() string               { return d.i.name }
func (d dirEntry) IsDir() bool                { return d.i.IsDir() }
func (d dirEntry) Type() fs.FileMode          { return d.i.Mode().Type() }
func (d dirEntry) Info() (fs.FileInfo, error) { return d.i, nil }

// file adapts an open Inversion file to fs.File.
type file struct {
	info info
	f    *core.File
}

func (f *file) Stat() (fs.FileInfo, error) { return f.info, nil }
func (f *file) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *file) Close() error {
	err := f.f.Close()
	if err == core.ErrClosed {
		return fs.ErrClosed
	}
	return err
}

// Seek lets io.Seeker consumers (http.ServeContent and friends) work.
func (f *file) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

// ReadAt supports io.ReaderAt consumers.
func (f *file) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

// dirFile is an opened directory: readable only via ReadDir.
type dirFile struct {
	info    info
	entries []core.DirEntry
	pos     int
}

func (d *dirFile) Stat() (fs.FileInfo, error) { return d.info, nil }
func (d *dirFile) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.info.name, Err: fs.ErrInvalid}
}
func (d *dirFile) Close() error { return nil }

// ReadDir implements fs.ReadDirFile with the usual n semantics.
func (d *dirFile) ReadDir(n int) ([]fs.DirEntry, error) {
	remaining := len(d.entries) - d.pos
	if n <= 0 {
		out := make([]fs.DirEntry, 0, remaining)
		for ; d.pos < len(d.entries); d.pos++ {
			e := d.entries[d.pos]
			out = append(out, dirEntry{info{e.Name, e.Attr}})
		}
		return out, nil
	}
	if remaining == 0 {
		return nil, io.EOF
	}
	if n > remaining {
		n = remaining
	}
	out := make([]fs.DirEntry, 0, n)
	for i := 0; i < n; i++ {
		e := d.entries[d.pos]
		out = append(out, dirEntry{info{e.Name, e.Attr}})
		d.pos++
	}
	return out, nil
}

// Interface conformance.
var (
	_ fs.FS          = (*FS)(nil)
	_ fs.StatFS      = (*FS)(nil)
	_ fs.ReadDirFS   = (*FS)(nil)
	_ fs.ReadDirFile = (*dirFile)(nil)
	_ io.ReaderAt    = (*file)(nil)
	_ io.Seeker      = (*file)(nil)
)
