package invfs

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"testing"
	"testing/fstest"

	"repro/inversion"
)

func newFS(t *testing.T) (*inversion.DB, *inversion.Session, *FS) {
	t.Helper()
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 128})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("fsuser")
	return db, s, New(s)
}

func TestFSTestSuite(t *testing.T) {
	_, s, fsys := newFS(t)
	files := map[string][]byte{
		"/hello.txt":        []byte("hello"),
		"/empty":            nil,
		"/dir/a.txt":        []byte("aaa"),
		"/dir/sub/deep.bin": bytes.Repeat([]byte{1, 2, 3}, 5000),
	}
	if err := s.MkdirAll("/dir/sub"); err != nil {
		t.Fatal(err)
	}
	var names []string
	for p, data := range files {
		if err := s.WriteFile(p, data, inversion.CreateOpts{}); err != nil {
			t.Fatal(err)
		}
		names = append(names, p[1:])
	}
	// The stdlib's own conformance suite.
	if err := fstest.TestFS(fsys, names...); err != nil {
		t.Fatal(err)
	}
}

func TestWalkDir(t *testing.T) {
	_, s, fsys := newFS(t)
	if err := s.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a/1", "/a/b/2", "/a/b/c/3"} {
		if err := s.WriteFile(p, []byte("x"), inversion.CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		visited = append(visited, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{".", "a", "a/1", "a/b", "a/b/2", "a/b/c", "a/b/c/3"}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited = %v", visited)
		}
	}
}

func TestReadFileAndStat(t *testing.T) {
	_, s, fsys := newFS(t)
	if err := s.WriteFile("/data", []byte("contents"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(fsys, "data")
	if err != nil || string(got) != "contents" {
		t.Fatalf("ReadFile: %q %v", got, err)
	}
	fi, err := fs.Stat(fsys, "data")
	if err != nil || fi.Size() != 8 || fi.IsDir() {
		t.Fatalf("Stat: %+v %v", fi, err)
	}
	if fi.Mode().IsDir() {
		t.Fatal("file mode is dir")
	}
	di, err := fs.Stat(fsys, ".")
	if err != nil || !di.IsDir() {
		t.Fatalf("root stat: %+v %v", di, err)
	}
}

func TestErrNotExist(t *testing.T) {
	_, _, fsys := newFS(t)
	_, err := fsys.Open("missing")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) || pe.Path != "missing" {
		t.Fatalf("not a PathError: %v", err)
	}
	if _, err := fsys.Open("/absolute"); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("absolute name: %v", err)
	}
}

func TestSeekAndReadAt(t *testing.T) {
	_, s, fsys := newFS(t)
	data := bytes.Repeat([]byte("0123456789"), 2000)
	if err := s.WriteFile("/seekable", data, inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("seekable")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sk, ok := f.(io.Seeker)
	if !ok {
		t.Fatal("file not seekable")
	}
	if _, err := sk.Seek(10000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123456789" {
		t.Fatalf("after seek read %q", buf)
	}
	ra := f.(io.ReaderAt)
	if _, err := ra.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "5678901234" {
		t.Fatalf("ReadAt %q", buf)
	}
}

func TestHistoricalFS(t *testing.T) {
	db, s, _ := newFS(t)
	if err := s.WriteFile("/f", []byte("old"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	if err := s.WriteFile("/f", []byte("new and longer"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/added-later", []byte("x"), inversion.CreateOpts{}); err != nil {
		t.Fatal(err)
	}

	now := New(s)
	then := NewAsOf(s, before)

	got, err := fs.ReadFile(now, "f")
	if err != nil || string(got) != "new and longer" {
		t.Fatalf("now: %q %v", got, err)
	}
	got, err = fs.ReadFile(then, "f")
	if err != nil || string(got) != "old" {
		t.Fatalf("then: %q %v", got, err)
	}
	if _, err := then.Open("added-later"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("future file visible in the past: %v", err)
	}
	entries, err := fs.ReadDir(then, ".")
	if err != nil || len(entries) != 1 || entries[0].Name() != "f" {
		t.Fatalf("historical ReadDir: %v %v", entries, err)
	}
}

func TestDirReadChunked(t *testing.T) {
	_, s, fsys := newFS(t)
	for _, n := range []string{"/a", "/b", "/c"} {
		if err := s.WriteFile(n, []byte("x"), inversion.CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fsys.Open(".")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, ok := f.(fs.ReadDirFile)
	if !ok {
		t.Fatal("root not a ReadDirFile")
	}
	first, err := d.ReadDir(2)
	if err != nil || len(first) != 2 {
		t.Fatalf("first batch: %v %v", first, err)
	}
	second, err := d.ReadDir(2)
	if err != nil || len(second) != 1 {
		t.Fatalf("second batch: %v %v", second, err)
	}
	if _, err := d.ReadDir(1); err != io.EOF {
		t.Fatalf("exhausted dir: %v", err)
	}
	// Reading bytes from a directory fails.
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Fatal("read from directory succeeded")
	}
}
