package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// TestReadMostlyScalingFloor guards the concurrent-scaling headline
// against observability overhead: the metrics registry and span charge
// sites sit on the buffer pool and lock manager hot paths, and this
// test fails if they ever drag read-mostly scaling below 2x at four
// goroutines. One retry absorbs CI scheduler noise — two consecutive
// sub-2x runs mean a real regression, not jitter.
func TestReadMostlyScalingFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("real-sleep scaling benchmark")
	}
	const opsPerG = 200
	speedup := func() float64 {
		pts, err := bench.RunScaling(bench.WorkloadRead, []int{1, 4}, opsPerG)
		if err != nil {
			t.Fatal(err)
		}
		return pts[1].Speedup
	}
	s := speedup()
	if s < 2.0 {
		t.Logf("read-mostly g=4 speedup %.2fx < 2x, retrying once", s)
		s = speedup()
	}
	if s < 2.0 {
		t.Fatalf("read-mostly g=4 speedup %.2fx, want >= 2x", s)
	}
	t.Logf("read-mostly g=4 speedup %.2fx", s)
}

// TestObsOverheadFloor is the same scaling floor with the wait-event
// sampler attached at its default interval: BeginWait sites sit on the
// lock park, page load, and latch paths, and publishing a wait tag plus
// being sampled every 10ms must not drag read-mostly scaling below 2x
// at four goroutines. Same one-retry policy as above.
func TestObsOverheadFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("real-sleep scaling benchmark")
	}
	sampler := obs.NewWaitSampler(obs.DefaultWaitSamplingInterval, nil)
	sampler.Start()
	defer sampler.Stop()
	const opsPerG = 200
	speedup := func() float64 {
		pts, err := bench.RunScaling(bench.WorkloadRead, []int{1, 4}, opsPerG)
		if err != nil {
			t.Fatal(err)
		}
		return pts[1].Speedup
	}
	s := speedup()
	if s < 2.0 {
		t.Logf("sampled read-mostly g=4 speedup %.2fx < 2x, retrying once", s)
		s = speedup()
	}
	if s < 2.0 {
		t.Fatalf("read-mostly g=4 speedup with wait sampler %.2fx, want >= 2x", s)
	}
	t.Logf("read-mostly g=4 speedup with wait sampler %.2fx", s)
}

// TestNoStrayPrintsInInternal keeps internal packages from writing to
// stdout: operational output belongs to the metrics registry, the trace
// ring, or an injected logger, never fmt.Print* — a daemon's stdout is
// not a log. Test files are exempt.
func TestNoStrayPrintsInInternal(t *testing.T) {
	re := regexp.MustCompile(`\bfmt\.Print(ln|f)?\(`)
	err := filepath.Walk("internal", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if re.MatchString(line) {
				t.Errorf("%s:%d: stray %s", path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
