// Command invbench regenerates the paper's evaluation: Figures 3–6 and
// Table 3 of Olson's Inversion file system paper, plus the local
// ([STON93]) comparison and the ablation studies listed in DESIGN.md.
// Times are simulated seconds on the modeled 1993 testbed (DECsystem
// 5900, RZ58 disk, 10 Mbit/s Ethernet, PRESTOserve), so the shape of
// the results — who wins, by what factor — is comparable to the
// published numbers, which are printed alongside.
//
// Usage:
//
//	invbench -all            # everything
//	invbench -fig 3          # one figure (3, 4, 5 or 6)
//	invbench -table3         # all nine ops, three configurations
//	invbench -local          # Inversion vs local FFS, no network
//	invbench -ablate         # cache size, coalescing, compression, jukebox
//	invbench -scale          # concurrent-scaling curve (wall clock)
//	invbench -meta           # metadata storm: sharded namespace, N=1 vs N=8
//	invbench -size 25        # created-file size in MB (default 25)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "reproduce one figure (3..6)")
		table3   = flag.Bool("table3", false, "reproduce Table 3")
		local    = flag.Bool("local", false, "local (no-network) comparison")
		ablate   = flag.Bool("ablate", false, "run ablations")
		scale    = flag.Bool("scale", false, "concurrent-scaling curve (wall clock)")
		commit   = flag.Bool("commit", false, "write-heavy commit-throughput scaling (group commit, wall clock)")
		meta     = flag.Bool("meta", false, "metadata-storm scaling: partitioned namespace, N=1 vs N=8 shards (wall clock)")
		all      = flag.Bool("all", false, "run everything")
		sizeMB   = flag.Int64("size", 25, "created file size in MB")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file")
		flight   = flag.String("flight", "",
			"run a wait-event sampler for the whole run and dump the flight-recorder bundle (timeline + wait profile) to this file at exit")
		regress       = flag.Bool("regress", false, "load -regress-input into a throwaway volume's metrics-history relations and run the engine's regression detector over every bench series")
		regressInput  = flag.String("regress-input", "BENCH_smoke.json", "bench -json report to check in -regress mode")
		regressInject = flag.Float64("regress-inject", 0,
			"self-test: multiply every series by this factor in one synthetic tick and fail unless the detector flags all of them (0 disables)")
		regressStrict = flag.Bool("regress-strict", false, "exit nonzero when -regress flags a real slowdown (default is warn-only)")
	)
	flag.Parse()
	if *regress {
		if err := runRegress(*regressInput, *regressInject, *regressStrict); err != nil {
			fmt.Fprintln(os.Stderr, "invbench:", err)
			os.Exit(1)
		}
		return
	}
	if !*table3 && !*local && !*ablate && !*scale && !*commit && !*meta && !*all && *fig == 0 {
		*all = true
	}
	var sampler *obs.WaitSampler
	if *flight != "" {
		sampler = obs.NewWaitSampler(obs.DefaultWaitSamplingInterval, nil)
		sampler.Start()
	}
	err := run(*fig, *table3, *local, *ablate, *scale, *commit, *meta, *all, *sizeMB, *jsonPath)
	if *flight != "" {
		sampler.Stop()
		if ferr := dumpFlight(*flight, sampler.Snapshot()); ferr != nil {
			fmt.Fprintln(os.Stderr, "invbench: flight dump:", ferr)
		} else {
			fmt.Printf("wrote flight-recorder bundle to %s\n", *flight)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "invbench:", err)
		os.Exit(1)
	}
}

// dumpFlight writes the benchmark run's flight bundle: the recent
// span/lifecycle timeline plus the whole-run wait profile.
func dumpFlight(path string, profile obs.WaitProfile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.Flight().WriteBundle(f, "invbench", &profile)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// jsonReport is the -json output shape: the simulated Table 3 grid next
// to the paper's published numbers, and the wall-clock scaling points
// with their contention stats and metrics-registry snapshots. CI writes
// one per bench-smoke run, so regressions show up as artifact diffs.
type jsonReport struct {
	FileSizeBytes int64                           `json:"file_size_bytes,omitempty"`
	Table3Seconds map[string]map[string]float64   `json:"table3_seconds,omitempty"`
	PaperSeconds  map[string]map[string]float64   `json:"paper_seconds,omitempty"`
	Scaling       map[string][]bench.ScalingPoint `json:"scaling,omitempty"`
}

func run(fig int, table3, local, ablate, scale, commit, meta, all bool, sizeMB int64, jsonPath string) error {
	var jr jsonReport
	p := bench.DefaultParams()
	fileSize := sizeMB << 20
	scaled := ""
	if sizeMB != 25 {
		scaled = fmt.Sprintf(" (scaled: %d MB file; paper used 25 MB)", sizeMB)
	}

	var rep *bench.Report
	need := all || table3 || fig != 0
	if need {
		fmt.Printf("Running the paper's benchmark on the three configurations%s...\n\n", scaled)
		var err error
		rep, err = bench.Run(p, fileSize, []bench.Config{
			bench.ConfigInvCS, bench.ConfigNFS, bench.ConfigInvSP,
		})
		if err != nil {
			return err
		}
		jr.FileSizeBytes = rep.FileSize
		jr.Table3Seconds = make(map[string]map[string]float64)
		for cfg, row := range rep.Seconds {
			m := make(map[string]float64, len(row))
			for op, s := range row {
				m[op] = s
			}
			jr.Table3Seconds[string(cfg)] = m
		}
		jr.PaperSeconds = make(map[string]map[string]float64)
		for op, row := range bench.PaperTable3 {
			m := make(map[string]float64, len(row))
			for cfg, s := range row {
				m[string(cfg)] = s
			}
			jr.PaperSeconds[op] = m
		}
	}

	if all || fig == 3 {
		printFigure(rep, "Figure 3: 25 MByte file creation (elapsed seconds)",
			[]string{bench.OpCreate}, []bench.Config{bench.ConfigInvCS, bench.ConfigNFS})
	}
	if all || fig == 4 {
		printFigure(rep, "Figure 4: random single-byte access (elapsed seconds)",
			[]string{bench.OpReadByte, bench.OpWriteByte},
			[]bench.Config{bench.ConfigInvCS, bench.ConfigNFS})
	}
	if all || fig == 5 {
		printFigure(rep, "Figure 5: read throughput (elapsed seconds, 1 MByte)",
			[]string{bench.OpReadSingle, bench.OpReadSeq, bench.OpReadRandom},
			[]bench.Config{bench.ConfigInvCS, bench.ConfigNFS})
	}
	if all || fig == 6 {
		printFigure(rep, "Figure 6: write throughput (elapsed seconds, 1 MByte)",
			[]string{bench.OpWriteSingle, bench.OpWriteSeq, bench.OpWriteRandom},
			[]bench.Config{bench.ConfigInvCS, bench.ConfigNFS})
	}
	if all || table3 {
		printTable3(rep)
	}
	if all || local {
		if err := printLocal(p, fileSize); err != nil {
			return err
		}
	}
	if all || ablate {
		if err := printAblations(p, fileSize); err != nil {
			return err
		}
	}
	if all || scale {
		pts, err := printScaling()
		if err != nil {
			return err
		}
		jr.Scaling = pts
	}
	if all || commit {
		pts, err := printCommitScaling()
		if err != nil {
			return err
		}
		if jr.Scaling == nil {
			jr.Scaling = make(map[string][]bench.ScalingPoint)
		}
		jr.Scaling[bench.WorkloadWrite] = pts
	}
	if all || meta {
		pts, err := printMetaScaling()
		if err != nil {
			return err
		}
		if jr.Scaling == nil {
			jr.Scaling = make(map[string][]bench.ScalingPoint)
		}
		for _, pt := range pts {
			jr.Scaling[pt.Workload] = []bench.ScalingPoint{pt}
		}
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(&jr, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote machine-readable results to %s\n", jsonPath)
	}
	return nil
}

// printScaling runs the concurrent-scaling benchmark (wall clock, not
// the simulated 1993 clock) and prints throughput, speedup over one
// goroutine, and the contention counters each layer exports. The final
// point of each workload also dumps its metrics-registry snapshot, so
// the latency histograms behind the throughput numbers are visible
// without attaching an HTTP scraper. Load-waits (single-flight: a
// goroutine parked on another's in-flight page read) are reported
// separately from lock waits (two-phase lock-table contention) — the
// two look identical in aggregate throughput but call for different
// fixes.
func printScaling() (map[string][]bench.ScalingPoint, error) {
	fmt.Println("Concurrent scaling (wall clock; sleeping device, pool < working set):")
	out := make(map[string][]bench.ScalingPoint)
	for _, wl := range []string{bench.WorkloadRead, bench.WorkloadMixed} {
		pts, err := bench.RunScaling(wl, []int{1, 2, 4, 8}, 400)
		if err != nil {
			return nil, err
		}
		out[wl] = pts
		fmt.Printf("  %s:\n", wl)
		for _, pt := range pts {
			st := pt.Stats
			fmt.Printf("    g=%d  %8.0f ops/s  speedup %4.2fx   "+
				"cache %d/%d h/m, %d load-waits, %d overcommits; "+
				"status-cache %d/%d h/m; %d lock waits\n",
				pt.Goroutines, pt.OpsPerSec, pt.Speedup,
				st.CacheHits, st.CacheMisses, st.CacheLoadWaits, st.CacheOvercommits,
				st.StatusCacheHits, st.StatusCacheMisses, st.LockWaits)
		}
		last := pts[len(pts)-1]
		fmt.Printf("  %s metrics registry (g=%d run):\n", wl, last.Goroutines)
		fmt.Print(indent(obs.FormatText(last.Obs), "    "))
	}
	fmt.Println()
	return out, nil
}

// printCommitScaling runs the write-heavy commit-throughput grid: every
// operation overwrites a private file and commits in its own
// transaction over a device whose Sync dominates, so the curve measures
// how well the group-commit pipeline amortizes log forces across
// concurrent committers. Alongside throughput it prints the pipeline's
// own counters: mean commit batch size (1.00 = no batching) and the
// log forces saved by riding another committer's batch.
func printCommitScaling() ([]bench.ScalingPoint, error) {
	fmt.Println("Commit scaling (wall clock; write-heavy, sync-dominated device, group commit):")
	pts, err := bench.RunScaling(bench.WorkloadWrite, []int{1, 2, 4, 8}, 32)
	if err != nil {
		return nil, err
	}
	for _, pt := range pts {
		batches, commits := commitBatchStats(pt.Obs)
		meanBatch := 1.0
		if batches > 0 {
			meanBatch = float64(commits) / float64(batches)
		}
		saved := obsCounter(pt.Obs, "txn.group_commit.forces_saved")
		fmt.Printf("    g=%d  %8.0f commits/s  speedup %4.2fx   "+
			"%d batches, mean batch %.2f, %d forces saved\n",
			pt.Goroutines, pt.OpsPerSec, pt.Speedup, batches, meanBatch, saved)
	}
	fmt.Println()
	return pts, nil
}

// printMetaScaling runs the metadata-storm benchmark: the same
// create/stat/rename stream from four concurrent clients, once on an
// unpartitioned namespace (N=1) and once hash-partitioned eight ways
// (N=8), over the same eight simulated metadata spindles. With one
// global naming relation every client's page loads queue on one
// spindle; with eight shards bound to eight spindles they overlap. The
// last point's speedup is the headline N=8-over-N=1 ratio, and the
// per-shard routing counters show the hash actually spread the traffic.
func printMetaScaling() ([]bench.ScalingPoint, error) {
	fmt.Println("Metadata storm (wall clock; 4 clients, per-spindle shard placement):")
	pts, err := bench.RunMetaScaling(4, 384, []int{1, 8})
	if err != nil {
		return nil, err
	}
	for _, pt := range pts {
		st := pt.Stats
		fmt.Printf("    %-8s g=%d  %8.0f ops/s  speedup %4.2fx   "+
			"cache %d/%d h/m, %d load-waits; %d lock waits\n",
			pt.Workload, pt.Goroutines, pt.OpsPerSec, pt.Speedup,
			st.CacheHits, st.CacheMisses, st.CacheLoadWaits, st.LockWaits)
	}
	last := pts[len(pts)-1]
	fmt.Printf("  per-shard routing (%s):\n", last.Workload)
	for _, s := range last.Namespace {
		fmt.Printf("    shard %2d  %6d lookups  %6d inserts  %5d removes  "+
			"%4d renames (%d cross-shard)  %d lock waits\n",
			s.Shard, s.Lookups, s.Inserts, s.Removes, s.Renames, s.CrossRenames, s.LockWaits)
	}
	fmt.Println()
	return pts, nil
}

// commitBatchStats extracts (batches, commits) from the group-commit
// batch-size histogram: one observation per batch, each observation's
// value the number of committers it retired.
func commitBatchStats(snap obs.Snapshot) (batches, commits int64) {
	for _, h := range snap.Hists {
		if h.Name == "txn.group_commit.batch_size" {
			return h.Count, h.SumNs
		}
	}
	return 0, 0
}

// obsCounter reads one counter from a snapshot (0 when absent).
func obsCounter(snap obs.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, ln := range lines {
		if ln != "" {
			lines[i] = prefix + ln
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

func cfgLabel(cfg bench.Config) string {
	switch cfg {
	case bench.ConfigInvCS:
		return "Inversion client/server"
	case bench.ConfigNFS:
		return "ULTRIX NFS (PRESTOserve)"
	case bench.ConfigInvSP:
		return "Inversion single process"
	case bench.ConfigLocalFS:
		return "local FFS"
	case bench.ConfigNFSNoPrest:
		return "ULTRIX NFS (no NVRAM)"
	default:
		return string(cfg)
	}
}

// printFigure prints measured seconds plus the Inversion/NFS throughput
// ratio the paper quotes under each figure.
func printFigure(rep *bench.Report, title string, ops []string, cfgs []bench.Config) {
	fmt.Println(title)
	fmt.Printf("  %-36s", "operation")
	for _, c := range cfgs {
		fmt.Printf("  %24s", cfgLabel(c))
	}
	fmt.Println("   Inv/NFS   paper")
	for _, op := range ops {
		fmt.Printf("  %-36s", bench.OpLabel(op))
		for _, c := range cfgs {
			fmt.Printf("  %22.2fs", rep.Seconds[c][op])
		}
		measured := rep.Seconds[bench.ConfigNFS][op] / rep.Seconds[bench.ConfigInvCS][op]
		paper := bench.PaperTable3[op][bench.ConfigNFS] / bench.PaperTable3[op][bench.ConfigInvCS]
		fmt.Printf("   %5.0f%%   %5.0f%%\n", measured*100, paper*100)
	}
	fmt.Println()
}

func printTable3(rep *bench.Report) {
	cfgs := []bench.Config{bench.ConfigInvCS, bench.ConfigNFS, bench.ConfigInvSP}
	fmt.Println("Table 3: elapsed seconds for benchmark tests in three configurations")
	fmt.Println("  (measured | paper)")
	fmt.Printf("  %-36s %22s %22s %22s\n", "Operation",
		"Inversion client/srv", "ULTRIX NFS", "Inversion single-proc")
	for _, op := range bench.AllOps {
		fmt.Printf("  %-36s", bench.OpLabel(op))
		for _, c := range cfgs {
			fmt.Printf(" %10.2f | %7.2f", rep.Seconds[c][op], bench.PaperTable3[op][c])
		}
		fmt.Println()
	}
	fmt.Println()
}

func printLocal(p bench.Params, fileSize int64) error {
	fmt.Println("Local comparison ([STON93]: Inversion ≥90% of native FS on large")
	fmt.Println("sequential transfers, ~70% on small random transfers; no network):")
	rep, err := bench.Run(p, fileSize, []bench.Config{bench.ConfigInvSP, bench.ConfigLocalFS})
	if err != nil {
		return err
	}
	for _, op := range []string{bench.OpReadSingle, bench.OpReadSeq, bench.OpReadRandom,
		bench.OpWriteSingle, bench.OpWriteSeq, bench.OpWriteRandom} {
		inv := rep.Seconds[bench.ConfigInvSP][op]
		lfs := rep.Seconds[bench.ConfigLocalFS][op]
		fmt.Printf("  %-36s inversion %7.2fs   local-ffs %7.2fs   ratio %4.0f%%\n",
			bench.OpLabel(op), inv, lfs, lfs/inv*100)
	}
	fmt.Println()
	return nil
}

func printAblations(p bench.Params, fileSize int64) error {
	fmt.Println("Ablations (design choices called out in DESIGN.md):")

	cs, err := bench.AblateCacheSize(p, fileSize)
	if err != nil {
		return err
	}
	fmt.Printf("  buffer cache 64 vs 300 pages (as shipped vs Berkeley):\n")
	for _, op := range []string{bench.OpReadSeq, bench.OpReadRandom, bench.OpWriteSeq} {
		fmt.Printf("    %-34s %7.2fs -> %7.2fs\n",
			bench.OpLabel(op), cs.Small[op].Seconds(), cs.Large[op].Seconds())
	}

	co, err := bench.AblateCoalescing(p)
	if err != nil {
		return err
	}
	fmt.Printf("  write coalescing, 1 MB in 256 B sequential writes (one txn):\n")
	fmt.Printf("    coalesced: %7.3fs (%4d chunk-table pages)\n",
		co.Coalesced.Seconds(), co.RecordsCoalesced)
	fmt.Printf("    direct:    %7.3fs (%4d chunk-table pages)\n",
		co.Direct.Seconds(), co.RecordsUncoalesced)

	cm, err := bench.AblateCompression(p)
	if err != nil {
		return err
	}
	fmt.Printf("  chunk compression, 2 MB compressible file:\n")
	fmt.Printf("    plain:      create %6.2fs  seq read %6.2fs  rnd read %6.2fs  %4d pages\n",
		cm.CreatePlain.Seconds(), cm.ReadPlain.Seconds(), cm.RandomPlain.Seconds(), cm.PagesPlain)
	fmt.Printf("    compressed: create %6.2fs  seq read %6.2fs  rnd read %6.2fs  %4d pages\n",
		cm.CreateComp.Seconds(), cm.ReadComp.Seconds(), cm.RandomComp.Seconds(), cm.PagesComp)

	jb, err := bench.AblateJukeboxCache(p)
	if err != nil {
		return err
	}
	fmt.Printf("  jukebox staging cache, 2 MB file on WORM:\n")
	fmt.Printf("    cold read %6.2fs; repeat with 10MB cache %6.2fs (%d platter loads);\n",
		jb.ColdRead.Seconds(), jb.CachedRead.Seconds(), jb.PlatterLoadsCached)
	fmt.Printf("    repeat with 32KB cache %6.2fs (%d platter loads)\n",
		jb.TinyCacheRepeatRead.Seconds(), jb.PlatterLoadsTinyCache)

	rec, err := bench.AblateRecovery(p, 50, 20<<20)
	if err != nil {
		return err
	}
	fmt.Printf("  crash recovery vs fsck, %d files / %d MB on disk (%d pages):\n",
		rec.Files, rec.DataBytes>>20, rec.PagesOnDisk)
	fmt.Printf("    log-only recovery %8.4fs;  fsck-style full scan %8.2fs  (%.0fx)\n",
		rec.RecoveryTime.Seconds(), rec.FsckTime.Seconds(), rec.SpeedupFactor)
	fmt.Println()
	return nil
}
