// Regression detection over the metrics-history relations: -regress
// loads a machine-readable bench report (the BENCH_smoke.json that CI's
// bench step writes) into a throwaway in-memory volume's inv_history /
// inv_history_samples relations as a trajectory of ticks, then runs
// DB.CheckRegression over every bench.table3.* series. The detector
// lives in the engine — this command only feeds it and reports.
//
// Two modes:
//
//	invbench -regress -regress-input BENCH_smoke.json
//	    warn-only: prints every series with its latest/baseline ratio
//	    and flags slowdowns, but exits 0 (CI should not go red on a
//	    noisy benchmark delta). -regress-strict makes flags fatal.
//
//	invbench -regress -regress-input BENCH_smoke.json -regress-inject 2
//	    self-test: appends one synthetic tick with every value
//	    multiplied by the factor and REQUIRES the detector to flag all
//	    of them. Exits 1 if any slips through — so CI proves the
//	    detector works before trusting its silence.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/inversion"
)

// regressBaselineTicks is how many baseline ticks the loader replays
// before the "latest" tick, matching DB.CheckRegression's default
// window count.
const regressBaselineTicks = 5

// regressSamples flattens a report's Table 3 grid into named history
// samples: one series per (configuration, operation) cell, seconds as
// the value. Sorted so tick contents are deterministic.
func regressSamples(jr *jsonReport) []obs.HistorySample {
	var out []obs.HistorySample
	for cfg, row := range jr.Table3Seconds {
		for op, s := range row {
			out = append(out, obs.HistorySample{
				Name:  fmt.Sprintf("bench.table3.%s.%s_s", cfg, op),
				Kind:  obs.SampleGauge,
				Value: s,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// runRegress is the -regress entry point. inject > 0 switches to
// self-test mode; strict makes warn-only flags fatal.
func runRegress(input string, inject float64, strict bool) error {
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	var jr jsonReport
	if err := json.Unmarshal(raw, &jr); err != nil {
		return fmt.Errorf("%s: %w", input, err)
	}
	base := regressSamples(&jr)
	if len(base) == 0 {
		return fmt.Errorf("%s: no table3_seconds grid to check (run invbench -table3 -json %s first)", input, input)
	}

	// A throwaway in-memory volume: history enabled, ticks appended by
	// hand. The hour interval keeps the background recorder quiet.
	sw := inversion.NewDeviceSwitch()
	sw.Register(inversion.NewMemDevice(nil, 0))
	db, err := inversion.Open(sw, inversion.Options{
		Buffers:        128,
		MetricsHistory: time.Hour,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	// Replay the report as a trajectory: baseline ticks one simulated
	// minute apart, then the tick under test (injected slowdown in
	// self-test mode, the report itself otherwise).
	const tickSpacing = time.Minute
	wall := time.Now().Add(-time.Duration(regressBaselineTicks) * tickSpacing)
	for i := 0; i < regressBaselineTicks; i++ {
		if _, err := db.AppendHistoryTick(wall.UnixNano(), int64(tickSpacing), base); err != nil {
			return err
		}
		wall = wall.Add(tickSpacing)
	}
	latest := base
	if inject > 0 {
		latest = make([]obs.HistorySample, len(base))
		copy(latest, base)
		for i := range latest {
			latest[i].Value *= inject
		}
	}
	if _, err := db.AppendHistoryTick(wall.UnixNano(), int64(tickSpacing), latest); err != nil {
		return err
	}

	mode := "warn-only"
	if inject > 0 {
		mode = fmt.Sprintf("self-test (injected %.2gx slowdown)", inject)
	}
	fmt.Printf("Regression check over %d series from %s (%s):\n", len(base), input, mode)
	var flagged, missed int
	for _, s := range base {
		res, err := db.CheckRegression(s.Name, regressBaselineTicks, 0)
		if err != nil {
			return err
		}
		mark := "  "
		if res.Regressed {
			mark = "▲ "
			flagged++
		} else if inject > 0 && res.Baseline > 0 {
			missed++
		}
		fmt.Printf("  %s%-52s baseline %8.2fs  latest %8.2fs  ratio %.2fx\n",
			mark, res.Series, res.Baseline, res.Latest, res.Ratio)
	}
	switch {
	case inject > 0 && missed > 0:
		return fmt.Errorf("regression self-test FAILED: %d injected slowdowns went unflagged", missed)
	case inject > 0:
		fmt.Printf("self-test passed: all %d injected slowdowns flagged\n", flagged)
	case flagged > 0 && strict:
		return fmt.Errorf("%d series regressed (strict mode)", flagged)
	case flagged > 0:
		fmt.Printf("warning: %d series regressed (warn-only; rerun with -regress-strict to fail)\n", flagged)
	default:
		fmt.Println("no regressions")
	}
	return nil
}
