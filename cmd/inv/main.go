// Command inv is a file system shell for a running invd server. Every
// operation the paper describes is reachable: ordinary file I/O,
// directory listing, time-travel reads via -asof, typed files,
// function invocation, migration, and vacuuming.
//
//	inv [-addr host:port] [-owner name] <command> [args]
//
//	  ls [-asof T] PATH          list a directory (optionally as of time T)
//	  cat [-asof T] PATH         print a file (optionally a past version)
//	  put PATH                   store stdin as PATH (creates or replaces)
//	  stat [-asof T] PATH        show file attributes
//	  mkdir PATH                 create a directory
//	  rm PATH                    unlink a file or empty directory
//	  mv OLD NEW                 rename
//	  call FUNC PATH             invoke a registered function on a file
//	  settype PATH TYPE          assign a defined file type
//	  stats                      server operational counters
//	  sh                         interactive shell (transactions!)
//	  migrate PATH CLASS         move a file to another device class
//	  vacuum                     run the vacuum cleaner
//	  scrub                      run the full on-media integrity pass
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/inversion"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:4817", "invd server address")
		owner = flag.String("owner", userName(), "owner name for new files")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *owner, args); err != nil {
		fmt.Fprintln(os.Stderr, "inv:", err)
		os.Exit(1)
	}
}

func userName() string {
	if u := os.Getenv("USER"); u != "" {
		return u
	}
	return "anonymous"
}

// parseAsOf pulls a leading "-asof T" out of the argument list.
func parseAsOf(args []string) (int64, []string, error) {
	if len(args) >= 2 && args[0] == "-asof" {
		t, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("bad -asof timestamp %q", args[1])
		}
		return t, args[2:], nil
	}
	return 0, args, nil
}

func run(addr, owner string, args []string) error {
	c, err := inversion.Dial(addr, owner)
	if err != nil {
		return err
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ls":
		asof, rest, err := parseAsOf(rest)
		if err != nil {
			return err
		}
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		entries, err := c.ReadDir(path, asof)
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "-"
			if e.Attr.IsDir() {
				kind = "d"
			}
			fmt.Printf("%s %-10s %10d  %s  %s\n",
				kind, e.Attr.Owner, e.Attr.Size, fmtTime(e.Attr.MTime), e.Name)
		}
		return nil
	case "cat":
		asof, rest, err := parseAsOf(rest)
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("usage: cat [-asof T] PATH")
		}
		fd, err := c.POpen(rest[0], false, asof)
		if err != nil {
			return err
		}
		defer c.PClose(fd)
		buf := make([]byte, 64*1024)
		for {
			n, err := c.PRead(fd, buf)
			if n > 0 {
				if _, werr := os.Stdout.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err == io.EOF || n == 0 {
				return nil
			}
			if err != nil {
				return err
			}
		}
	case "put":
		if len(rest) != 1 {
			return fmt.Errorf("usage: put PATH < data")
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		fd, err := c.PCreat(rest[0], inversion.CreateOpts{})
		if err != nil {
			// Replace an existing file.
			fd, err = c.POpen(rest[0], true, 0)
			if err != nil {
				return err
			}
			if err := c.PTruncate(fd, 0); err != nil {
				return err
			}
		}
		if _, err := c.PWrite(fd, data); err != nil {
			return err
		}
		return c.PClose(fd)
	case "stat":
		asof, rest, err := parseAsOf(rest)
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("usage: stat [-asof T] PATH")
		}
		a, err := c.Stat(rest[0], asof)
		if err != nil {
			return err
		}
		fmt.Printf("file:  %d\nowner: %s\ntype:  %s\nsize:  %d\nclass: %s\nctime: %s\nmtime: %s\natime: %s\nflags: %#x\n",
			a.File, a.Owner, orNone(a.Type), a.Size, orNone(a.Class),
			fmtTime(a.CTime), fmtTime(a.MTime), fmtTime(a.ATime), a.Flags)
		return nil
	case "mkdir":
		if len(rest) != 1 {
			return fmt.Errorf("usage: mkdir PATH")
		}
		return c.Mkdir(rest[0])
	case "rm":
		if len(rest) != 1 {
			return fmt.Errorf("usage: rm PATH")
		}
		return c.Unlink(rest[0])
	case "mv":
		if len(rest) != 2 {
			return fmt.Errorf("usage: mv OLD NEW")
		}
		return c.Rename(rest[0], rest[1])
	case "call":
		if len(rest) != 2 {
			return fmt.Errorf("usage: call FUNC PATH")
		}
		v, err := c.Call(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Println(v.String())
		return nil
	case "settype":
		if len(rest) != 2 {
			return fmt.Errorf("usage: settype PATH TYPE")
		}
		return c.SetFileType(rest[0], rest[1])
	case "migrate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: migrate PATH CLASS")
		}
		return c.Migrate(rest[0], rest[1])
	case "vacuum":
		rels, scanned, archived, removed, err := c.Vacuum()
		if err != nil {
			return err
		}
		fmt.Printf("vacuumed %d relations: scanned %d, archived %d, removed %d\n",
			rels, scanned, archived, removed)
		return nil
	case "scrub":
		rep, err := c.Scrub()
		if err != nil {
			return err
		}
		fmt.Println(rep.Summary())
		for _, p := range rep.Corrupt {
			fmt.Printf("corrupt: %s\n", p)
		}
		for _, p := range rep.Problems {
			fmt.Printf("problem: %s\n", p)
		}
		if !rep.OK() {
			return fmt.Errorf("scrub found problems")
		}
		return nil
	case "stats":
		st, err := c.Stats()
		if err != nil {
			return err
		}
		// Fixed label order so output diffs cleanly between runs; every
		// value carries its unit or a hits/misses-style qualifier.
		fmt.Printf("%-28s %d pages\n", "buffer.capacity:", st.CacheCapacity)
		fmt.Printf("%-28s %d hits / %d misses\n", "buffer.lookups:", st.CacheHits, st.CacheMisses)
		fmt.Printf("%-28s %d pages\n", "buffer.writebacks:", st.CacheWritebacks)
		fmt.Printf("%-28s %d frames\n", "buffer.evictions:", st.CacheEvictions)
		fmt.Printf("%-28s %d events\n", "buffer.overcommits:", st.CacheOvercommits)
		fmt.Printf("%-28s %d waits\n", "buffer.load_waits:", st.CacheLoadWaits)
		fmt.Printf("%-28s %d relations, %d types, %d functions\n", "catalog.objects:",
			st.Relations, st.Types, st.Functions)
		fmt.Printf("%-28s xid %d\n", "txn.horizon:", st.Horizon)
		fmt.Printf("%-28s %s\n", "txn.last_commit:", fmtTime(st.LastCommitTime))
		fmt.Printf("%-28s %d hits / %d misses\n", "txn.status_cache:",
			st.StatusCacheHits, st.StatusCacheMisses)
		fmt.Printf("%-28s %d waits\n", "txn.lock_waits:", st.LockWaits)
		snap, err := c.StatsV2()
		if err != nil {
			return fmt.Errorf("fetching metrics snapshot: %w", err)
		}
		fmt.Println()
		fmt.Print(inversion.FormatMetrics(snap))
		return nil
	case "sh":
		return shell(c)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// shell is an interactive session over one connection, so transactions
// can bracket several commands: begin, several puts, then commit (or
// abort) — the paper's atomic multi-file check-in, by hand.
func shell(c *inversion.Client) error {
	fmt.Println("inversion shell — begin/commit/abort, ls, cat, put PATH TEXT, rm, mv, mkdir, stat, quit")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("inv> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if err := shellCmd(c, fields); err != nil {
				if err == errQuit {
					return nil
				}
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		fmt.Print("inv> ")
	}
	return sc.Err()
}

var errQuit = fmt.Errorf("quit")

func shellCmd(c *inversion.Client, f []string) error {
	switch f[0] {
	case "quit", "exit":
		return errQuit
	case "begin":
		if err := c.PBegin(); err != nil {
			return err
		}
		fmt.Println("transaction started")
		return nil
	case "commit":
		if err := c.PCommit(); err != nil {
			return err
		}
		fmt.Println("committed")
		return nil
	case "abort":
		if err := c.PAbort(); err != nil {
			return err
		}
		fmt.Println("aborted")
		return nil
	case "ls":
		path := "/"
		if len(f) > 1 {
			path = f[1]
		}
		entries, err := c.ReadDir(path, 0)
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "-"
			if e.Attr.IsDir() {
				kind = "d"
			}
			fmt.Printf("%s %10d  %s\n", kind, e.Attr.Size, e.Name)
		}
		return nil
	case "cat":
		if len(f) != 2 {
			return fmt.Errorf("usage: cat PATH")
		}
		fd, err := c.POpen(f[1], false, 0)
		if err != nil {
			return err
		}
		defer c.PClose(fd)
		buf := make([]byte, 64*1024)
		for {
			n, err := c.PRead(fd, buf)
			if n > 0 {
				os.Stdout.Write(buf[:n])
			}
			if err != nil || n == 0 {
				fmt.Println()
				return nil
			}
		}
	case "put":
		if len(f) < 3 {
			return fmt.Errorf("usage: put PATH TEXT...")
		}
		data := []byte(strings.Join(f[2:], " "))
		fd, err := c.PCreat(f[1], inversion.CreateOpts{})
		if err != nil {
			fd, err = c.POpen(f[1], true, 0)
			if err != nil {
				return err
			}
			if err := c.PTruncate(fd, 0); err != nil {
				return err
			}
		}
		if _, err := c.PWrite(fd, data); err != nil {
			return err
		}
		return c.PClose(fd)
	case "rm":
		if len(f) != 2 {
			return fmt.Errorf("usage: rm PATH")
		}
		return c.Unlink(f[1])
	case "mv":
		if len(f) != 3 {
			return fmt.Errorf("usage: mv OLD NEW")
		}
		return c.Rename(f[1], f[2])
	case "mkdir":
		if len(f) != 2 {
			return fmt.Errorf("usage: mkdir PATH")
		}
		return c.Mkdir(f[1])
	case "stat":
		if len(f) != 2 {
			return fmt.Errorf("usage: stat PATH")
		}
		a, err := c.Stat(f[1], 0)
		if err != nil {
			return err
		}
		fmt.Printf("oid %d  size %d  owner %s  type %s\n", a.File, a.Size, a.Owner, orNone(a.Type))
		return nil
	default:
		return fmt.Errorf("unknown shell command %q", f[0])
	}
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func fmtTime(t int64) string {
	if t == 0 {
		return "-"
	}
	return time.Unix(0, t).UTC().Format(time.RFC3339)
}
