// Command invtop is a terminal monitor for a served Inversion
// database. In live mode it polls the statsv2 wire op and renders
// per-interval deltas of the metrics registry — counters as rates,
// gauges as points, histograms as p50/p95/p99 — the same diffing the
// metrics-history recorder persists. With -asof it instead replays a
// past instant from the inv_history relations over the ordinary query
// path: time travel over the engine's own telemetry, served by the
// engine.
//
// Usage:
//
//	invtop -addr 127.0.0.1:4817                  # live, refresh every 2s
//	invtop -addr 127.0.0.1:4817 -interval 500ms -n 10
//	invtop -addr 127.0.0.1:4817 -asof 2026-08-08T14:05:00Z
//	invtop -addr 127.0.0.1:4817 -asof 1754661900000000000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/inversion"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4817", "server address")
		owner    = flag.String("owner", "invtop", "user name sent to the server")
		interval = flag.Duration("interval", 2*time.Second, "live-mode refresh interval")
		n        = flag.Int("n", 0, "live-mode iteration count (0 = until interrupted)")
		top      = flag.Int("top", 15, "show at most this many counters per refresh (0 = all)")
		asof     = flag.String("asof", "",
			"replay the newest recorded tick at this instant from the history relations instead of live polling (RFC3339 or unix nanoseconds; requires the server to run with -metrics-history)")
	)
	flag.Parse()

	c, err := inversion.Dial(*addr, *owner)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invtop:", err)
		os.Exit(1)
	}
	defer c.Close()

	if *asof != "" {
		err = replay(c, *asof, *top)
	} else {
		err = live(c, *interval, *n, *top)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "invtop:", err)
		os.Exit(1)
	}
}

// live polls statsv2 and renders the per-interval delta view.
func live(c *inversion.Client, interval time.Duration, n, top int) error {
	differ := inversion.NewHistoryDiffer()
	// Prime the differ so the first rendered frame shows the first
	// interval's deltas, not all-time cumulative values.
	snap, err := c.StatsV2()
	if err != nil {
		return err
	}
	differ.Diff(snap, inversion.WaitProfile{})
	for i := 0; n == 0 || i < n; i++ {
		time.Sleep(interval)
		snap, err := c.StatsV2()
		if err != nil {
			return err
		}
		samples := differ.Diff(snap, inversion.WaitProfile{})
		fmt.Printf("── invtop  %s  (Δ over %s)\n",
			time.Now().Format(time.RFC3339), interval)
		render(os.Stdout, samples, top)
	}
	return nil
}

// replay renders the newest tick at the asof instant from the history
// relations, over the ordinary query op.
func replay(c *inversion.Client, asofArg string, top int) error {
	asofNs, err := parseAsOf(asofArg)
	if err != nil {
		return err
	}
	tick, err := c.Query(fmt.Sprintf(
		"retrieve (h.seq, h.wall_ns, h.interval_ns, h.level, h.dropped) from h in inv_history sort by h.seq desc limit 1 asof %d", asofNs))
	if err != nil {
		return err
	}
	if len(tick.Rows) == 0 {
		return fmt.Errorf("no history tick recorded at or before %s (is the server running with -metrics-history?)", asofArg)
	}
	row := tick.Rows[0]
	seq, wall, iv, level := row[0].I, row[1].I, row[2].I, row[3].I
	dropped := row[4].B
	res, err := c.Query(fmt.Sprintf(
		"retrieve (s.name, s.labels, s.kind, s.value) from s in inv_history_samples where s.seq = %d sort by s.name asof %d", seq, asofNs))
	if err != nil {
		return err
	}
	kind := "raw tick"
	if level != 0 {
		kind = "rollup"
	}
	fmt.Printf("── invtop  replaying %s seq %d @ %s  (interval %s)\n",
		kind, seq, time.Unix(0, wall).UTC().Format(time.RFC3339), time.Duration(iv))
	if dropped {
		fmt.Println("   ⚠ recording attempts before this tick were dropped: the preceding gap lost data")
	}
	samples := make([]inversion.HistorySample, 0, len(res.Rows))
	for _, r := range res.Rows {
		samples = append(samples, inversion.HistorySample{
			Name: r[0].S, Labels: r[1].S, Kind: r[2].S, Value: r[3].F,
		})
	}
	render(os.Stdout, samples, top)
	return nil
}

// parseAsOf accepts RFC3339 or raw unix nanoseconds.
func parseAsOf(s string) (int64, error) {
	if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ns, nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, fmt.Errorf("bad -asof %q (want RFC3339 or unix nanoseconds): %v", s, err)
	}
	return t.UnixNano(), nil
}

// render prints one frame: counters by delta (largest first), then
// histogram quantiles, then gauges, each section name-stable.
func render(w *os.File, samples []inversion.HistorySample, top int) {
	var counters, quantiles, gauges []inversion.HistorySample
	for _, s := range samples {
		switch s.Kind {
		case "counter":
			counters = append(counters, s)
		case "quantile":
			quantiles = append(quantiles, s)
		default:
			gauges = append(gauges, s)
		}
	}
	sort.Slice(counters, func(i, j int) bool {
		if counters[i].Value != counters[j].Value {
			return counters[i].Value > counters[j].Value
		}
		return label(counters[i]) < label(counters[j])
	})
	for _, sl := range [][]inversion.HistorySample{quantiles, gauges} {
		sort.Slice(sl, func(i, j int) bool { return label(sl[i]) < label(sl[j]) })
	}

	fmt.Fprintf(w, "%-52s %14s\n", "COUNTER (Δ)", "VALUE")
	shown := 0
	for _, s := range counters {
		if top > 0 && shown >= top {
			fmt.Fprintf(w, "  … %d more\n", len(counters)-shown)
			break
		}
		fmt.Fprintf(w, "%-52s %14.0f\n", label(s), s.Value)
		shown++
	}
	if len(quantiles) > 0 {
		fmt.Fprintf(w, "%-52s %14s\n", "LATENCY", "")
		for _, s := range quantiles {
			fmt.Fprintf(w, "%-52s %14s\n", label(s), time.Duration(int64(s.Value)).String())
		}
	}
	if len(gauges) > 0 {
		fmt.Fprintf(w, "%-52s %14s\n", "GAUGE", "VALUE")
		for _, s := range gauges {
			fmt.Fprintf(w, "%-52s %14.0f\n", label(s), s.Value)
		}
	}
	fmt.Fprintln(w)
}

func label(s inversion.HistorySample) string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}
