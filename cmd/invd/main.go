// Command invd is the Inversion file server daemon: it opens (or
// bootstraps) a database over the configured devices, registers the
// standard file types and classification functions, and serves the
// Inversion protocol over TCP. Clients link the wire client library
// (the paper's "special library") or use the inv and invql tools.
//
// Usage:
//
//	invd -addr :4817 -buffers 300 -devices disk,jukebox,mem
//
// The database lives in memory behind simulated devices: this daemon
// exists to exercise the client/server architecture, not to persist
// data across restarts.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/inversion"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4817", "listen address")
		buffers = flag.Int("buffers", 300, "shared buffer cache pages")
		devices = flag.String("devices", "disk,mem", "comma-separated device classes: disk, mem, jukebox")
		dflt    = flag.String("default", "", "default device class for new files")
		data    = flag.String("data", "", "backing file for a persistent database (overrides -devices)")
		idle    = flag.Duration("idle-timeout", inversion.DefaultIdleTimeout,
			"abort a connection's transaction (releasing its locks) after this much silence; the connection is dropped after twice this")
		grace = flag.Duration("grace", inversion.DefaultGracePeriod,
			"shutdown drain budget before open connections are force-closed")
		metricsAddr = flag.String("metrics-addr", "",
			"optional HTTP listen address serving /metrics (Prometheus text), /debug/pprof/*, and /traces/recent (JSON)")
		slowOp = flag.Duration("slow-op", 0,
			"log any request whose handling takes at least this long, with per-layer latency attribution (0 disables the log; the trace ring always runs)")
		bgWriter = flag.Bool("bg-writer", true,
			"run the background page writer, so eviction writebacks and most of each commit's data flush happen off the foreground path")
		ckptEvery = flag.Duration("checkpoint-every", time.Minute,
			"interval between transaction-log checkpoints, which bound how much log a restart must eagerly read (0 disables)")
		commitWindow = flag.Duration("commit-window", 0,
			"how long a group-commit leader holds the log force open for other committers to join its batch (0 forces immediately; try 2ms on sync-bound devices)")
		scrubOnStart = flag.Bool("scrub-on-start", false,
			"run the full integrity scrub (media, B-trees, namespace, chunks, txn log) after opening the database and refuse to serve if it is not clean")
		shards = flag.Int("shards", 0,
			"namespace shard count for a fresh volume: naming/fileatt metadata is hash-partitioned by parent directory across this many relation sets (0 = unpartitioned legacy layout; fixed at bootstrap — reopening an existing volume with a different non-zero count is refused)")
		shardClasses = flag.String("shard-classes", "",
			"comma-separated device classes to round-robin the namespace shards across (shard i lands on class i mod len; empty = default class for every shard)")
		waitSampling = flag.Duration("wait-sampling", inversion.DefaultWaitSamplingInterval,
			"wait-event sampler interval feeding the inv_wait_events catalog and /metrics (0 disables sampling; blocking sites then cost one atomic load)")
		flightDump = flag.String("flight-dump", "",
			"path the flight-recorder bundle is written to on handler panic, scrub-on-start failure, or SIGUSR1 (empty = invd-flight-<pid>.json in the working directory)")
		metricsHistory = flag.Duration("metrics-history", 0,
			"record the metrics registry into the inv_history/inv_history_samples relations at this interval, so statistics history is queryable (and time-travelable with asof, e.g. from invtop -asof) like any other data (0 disables; the relations are only created once enabled)")
	)
	flag.Parse()
	opts := inversion.Options{
		Buffers:           *buffers,
		BackgroundWriter:  *bgWriter,
		CheckpointEvery:   *ckptEvery,
		GroupCommitWindow: *commitWindow,
		NamespaceShards:   *shards,
		WaitSampling:      *waitSampling,
		MetricsHistory:    *metricsHistory,
	}
	if *shardClasses != "" {
		for _, c := range strings.Split(*shardClasses, ",") {
			opts.ShardClasses = append(opts.ShardClasses, strings.TrimSpace(c))
		}
	}
	if err := run(*addr, opts, *devices, *dflt, *data, *idle, *grace, *metricsAddr, *slowOp, *scrubOnStart, *flightDump); err != nil {
		fmt.Fprintln(os.Stderr, "invd:", err)
		os.Exit(1)
	}
}

// dumpFlight writes the flight-recorder bundle (plus the current wait
// profile, when a database is up) to the configured path. Best-effort:
// it runs on the way down from panics and failed scrubs, so errors are
// logged, never returned.
func dumpFlight(path, reason string, db *inversion.DB) {
	if path == "" {
		path = fmt.Sprintf("invd-flight-%d.json", os.Getpid())
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("invd: flight dump: %v", err)
		return
	}
	var profile *inversion.WaitProfile
	if db != nil {
		p := db.WaitProfile()
		profile = &p
	}
	err = inversion.DumpFlight(f, reason, profile)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Printf("invd: flight dump: %v", err)
		return
	}
	log.Printf("invd: flight recorder dumped to %s (%s)", path, reason)
}

func run(addr string, opts inversion.Options, devices, dflt, data string, idle, grace time.Duration, metricsAddr string, slowOp time.Duration, scrubOnStart bool, flightDump string) error {
	var (
		db      *inversion.DB
		fd      *inversion.FileDiskDevice
		err     error
		devDesc = devices
	)
	if data != "" {
		db, fd, err = inversion.OpenPersistent(data, opts)
		if err != nil {
			return err
		}
		devDesc = "persistent file " + data
		defer func() {
			if cerr := db.Close(); cerr != nil {
				log.Printf("invd: flush on shutdown: %v", cerr)
			}
			if cerr := fd.Close(); cerr != nil {
				log.Printf("invd: closing backing file: %v", cerr)
			}
		}()
	} else {
		sw := inversion.NewDeviceSwitch()
		clock := inversion.NewClock()
		for _, class := range strings.Split(devices, ",") {
			switch strings.TrimSpace(class) {
			case "disk":
				sw.Register(inversion.NewDiskDevice(clock))
			case "mem":
				sw.Register(inversion.NewMemDevice(nil, 0))
			case "jukebox":
				sw.Register(inversion.NewJukeboxDevice(clock))
			case "":
			default:
				return fmt.Errorf("unknown device class %q", class)
			}
		}
		if dflt != "" {
			if err := sw.SetDefault(dflt); err != nil {
				return err
			}
		}
		opts.DefaultClass = dflt
		db, err = inversion.Open(sw, opts)
		if err != nil {
			return err
		}
	}
	if scrubOnStart {
		rep, err := db.Scrub()
		if err != nil {
			return fmt.Errorf("scrub-on-start: %w", err)
		}
		log.Printf("invd: %s", rep.Summary())
		if !rep.OK() {
			for _, c := range rep.Media.Corrupt {
				log.Printf("invd: scrub: media: %s", c.String())
			}
			for _, p := range rep.Problems {
				log.Printf("invd: scrub: %s", p)
			}
			dumpFlight(flightDump, "scrub-on-start", db)
			return fmt.Errorf("scrub-on-start: database is not clean (%d media faults, %d problems)",
				len(rep.Media.Corrupt), len(rep.Problems))
		}
	}
	if err := inversion.RegisterStandardTypes(db.NewSession("invd")); err != nil {
		return err
	}
	srv := inversion.NewServerWith(db, inversion.ServerConfig{
		IdleTimeout: idle,
		GracePeriod: grace,
		SlowOp:      slowOp,
		PanicHook: func(op string, recovered any) {
			dumpFlight(flightDump, fmt.Sprintf("panic in %s", op), db)
		},
	})
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("invd: serving Inversion on %s (%s; idle-timeout %v, grace %v)",
		bound, devDesc, idle, grace)

	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		hs := &http.Server{Handler: inversion.NewMetricsHandler(db, srv)}
		go func() {
			if err := hs.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("invd: metrics server: %v", err)
			}
		}()
		defer hs.Close()
		log.Printf("invd: metrics on http://%s/metrics (pprof at /debug/pprof/, traces at /traces/recent and /traces/by-id, flight recorder at /debug/flight)",
			mln.Addr())
	}

	// SIGUSR1 dumps the flight recorder on demand — the live-incident
	// escape hatch when the HTTP endpoint is not configured.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			dumpFlight(flightDump, "SIGUSR1", db)
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("invd: shutting down (draining up to %v; send the signal again to force exit)", grace)
	go func() {
		<-sig
		log.Printf("invd: forced exit")
		os.Exit(1)
	}()
	return srv.Close()
}
