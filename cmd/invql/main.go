// Command invql is the POSTQUEL query monitor: an interactive shell for
// running retrieve and define statements against a running invd server,
// the equivalent of "the query language monitor program" the paper's
// users ran for ad hoc queries over the file system.
//
//	invql [-addr host:port] [-c "retrieve (filename) where ..."]
//
// Without -c it reads statements from stdin, one per line; "asof N" may
// trail a retrieve to query the past. Meta-commands: \d lists heap and
// index relations (from inv_relations), \dv lists the virtual system
// catalogs and their columns (from inv_columns), \history lists the
// recorded metrics-history series (from inv_history_meta), \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/inversion"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:4817", "invd server address")
		cmd  = flag.String("c", "", "execute one statement and exit (nonzero on error)")
		expr = flag.String("e", "", "alias for -c")
	)
	flag.Parse()
	if *cmd == "" {
		*cmd = *expr
	}
	if err := run(*addr, *cmd); err != nil {
		fmt.Fprintln(os.Stderr, "invql:", err)
		os.Exit(1)
	}
}

func run(addr, cmd string) error {
	c, err := inversion.Dial(addr, "invql")
	if err != nil {
		return err
	}
	defer c.Close()

	if cmd != "" {
		// One-shot mode: the error (if any) goes to stderr via main and
		// the process exits nonzero, so scripts can branch on it.
		return exec(c, cmd)
	}
	fmt.Println("Inversion POSTQUEL monitor — retrieve (...) where ... | define type ... | \\d | \\dv | \\waits | \\history | quit")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("* ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "quit" || line == "\\q" || line == "exit":
			return nil
		default:
			if err := exec(c, line); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		fmt.Print("* ")
	}
	return sc.Err()
}

// Meta-commands expand to catalog queries, so they work against any
// server that serves the virtual relations — no client-side schema.
var metaCommands = map[string]string{
	`\d`: `retrieve (r.oid, r.name, r.kind, r.pages, r.live, r.dead)
		from r in inv_relations sort by r.oid`,
	`\dv`: `retrieve (c.relation, c.column, c.type, c.doc)
		from c in inv_columns sort by c.relation`,
	`\waits`: `retrieve (w.class, w.event, w.op, w.relation, w.samples)
		from w in inv_wait_events sort by w.samples`,
	`\history`: `retrieve (m.name, m.labels, m.kind, m.ticks, m.first_seq, m.last_seq, m.last_value)
		from m in inv_history_meta sort by m.name`,
}

func exec(c *inversion.Client, q string) error {
	if meta, ok := metaCommands[strings.TrimSpace(q)]; ok {
		q = meta
	} else if strings.HasPrefix(strings.TrimSpace(q), `\`) {
		return fmt.Errorf(`unknown command %q (try \d, \dv, \waits, \history, or \q)`, q)
	}
	res, err := c.Query(q)
	if err != nil {
		return err
	}
	if res.Message != "" {
		fmt.Println(res.Message)
		return nil
	}
	// Column widths.
	widths := make([]int, len(res.Columns))
	for i, col := range res.Columns {
		widths[i] = len(col)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, col := range res.Columns {
		fmt.Printf("%-*s  ", widths[i], col)
	}
	fmt.Println()
	for i := range res.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range cells {
		for i, s := range row {
			fmt.Printf("%-*s  ", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}
