// Command invql is the POSTQUEL query monitor: an interactive shell for
// running retrieve and define statements against a running invd server,
// the equivalent of "the query language monitor program" the paper's
// users ran for ad hoc queries over the file system.
//
//	invql [-addr host:port] [-e "retrieve (filename) where ..."]
//
// Without -e it reads statements from stdin, one per line; "asof N" may
// trail a retrieve to query the past.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/inversion"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:4817", "invd server address")
		expr = flag.String("e", "", "execute one statement and exit")
	)
	flag.Parse()
	if err := run(*addr, *expr); err != nil {
		fmt.Fprintln(os.Stderr, "invql:", err)
		os.Exit(1)
	}
}

func run(addr, expr string) error {
	c, err := inversion.Dial(addr, "invql")
	if err != nil {
		return err
	}
	defer c.Close()

	if expr != "" {
		return exec(c, expr)
	}
	fmt.Println("Inversion POSTQUEL monitor — retrieve (...) where ... | define type ... | quit")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("* ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "quit" || line == "\\q" || line == "exit":
			return nil
		default:
			if err := exec(c, line); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		fmt.Print("* ")
	}
	return sc.Err()
}

func exec(c *inversion.Client, q string) error {
	res, err := c.Query(q)
	if err != nil {
		return err
	}
	if res.Message != "" {
		fmt.Println(res.Message)
		return nil
	}
	// Column widths.
	widths := make([]int, len(res.Columns))
	for i, col := range res.Columns {
		widths[i] = len(col)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, col := range res.Columns {
		fmt.Printf("%-*s  ", widths[i], col)
	}
	fmt.Println()
	for i := range res.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range cells {
		for i, s := range row {
			fmt.Printf("%-*s  ", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}
