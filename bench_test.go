// Package repro's root benchmark suite regenerates every table and
// figure in the paper's evaluation as Go benchmarks. Each benchmark
// runs the corresponding workload on the simulated 1993 testbed and
// reports two numbers: the real time the Go implementation took
// (ns/op — the implementation's own speed) and the simulated elapsed
// seconds (sim-s/op — the quantity comparable to the paper's figures).
//
// The benchmarks use a 4 MB created file so `go test -bench=.` stays
// quick; the full 25 MB paper-scale run is `go run ./cmd/invbench`,
// whose output is recorded in EXPERIMENTS.md.
//
//	BenchmarkFig3*  — 25 MB (scaled) file creation, Figure 3
//	BenchmarkFig4*  — random single-byte read/write, Figure 4
//	BenchmarkFig5*  — 1 MB reads (single/seq/random), Figure 5
//	BenchmarkFig6*  — 1 MB writes (single/seq/random), Figure 6
//	BenchmarkTable3* — the single-process column of Table 3
//	BenchmarkAblation* — DESIGN.md's ablation studies
//	BenchmarkCore*  — real-time microbenchmarks of the implementation
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/inversion"
)

// benchFileSize keeps testing.B iterations fast; invbench runs 25 MB.
const benchFileSize = 4 << 20

func benchOp(b *testing.B, cfg bench.Config, op string) {
	b.Helper()
	r, err := bench.NewRunner(cfg, bench.DefaultParams(), benchFileSize)
	if err != nil {
		b.Fatal(err)
	}
	// Prime the shared file outside the timer.
	if op != bench.OpCreate {
		if _, err := r.RunOp(bench.OpReadByte); err != nil {
			b.Fatal(err)
		}
	}
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := r.RunOp(op)
		if err != nil {
			b.Fatal(err)
		}
		sim += d.Seconds()
	}
	b.ReportMetric(sim/float64(b.N), "sim-s/op")
}

// Figure 3: file creation.

func BenchmarkFig3CreateInversionCS(b *testing.B) { benchOp(b, bench.ConfigInvCS, bench.OpCreate) }
func BenchmarkFig3CreateNFS(b *testing.B)         { benchOp(b, bench.ConfigNFS, bench.OpCreate) }
func BenchmarkFig3CreateInversionSP(b *testing.B) { benchOp(b, bench.ConfigInvSP, bench.OpCreate) }

// Figure 4: random single-byte access.

func BenchmarkFig4ReadByteInversionCS(b *testing.B) { benchOp(b, bench.ConfigInvCS, bench.OpReadByte) }
func BenchmarkFig4ReadByteNFS(b *testing.B)         { benchOp(b, bench.ConfigNFS, bench.OpReadByte) }
func BenchmarkFig4WriteByteInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpWriteByte)
}
func BenchmarkFig4WriteByteNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpWriteByte) }

// Figure 5: read throughput.

func BenchmarkFig5ReadSingleInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpReadSingle)
}
func BenchmarkFig5ReadSingleNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpReadSingle) }
func BenchmarkFig5ReadSeqInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpReadSeq)
}
func BenchmarkFig5ReadSeqNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpReadSeq) }
func BenchmarkFig5ReadRandomInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpReadRandom)
}
func BenchmarkFig5ReadRandomNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpReadRandom) }

// Figure 6: write throughput.

func BenchmarkFig6WriteSingleInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpWriteSingle)
}
func BenchmarkFig6WriteSingleNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpWriteSingle) }
func BenchmarkFig6WriteSeqInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpWriteSeq)
}
func BenchmarkFig6WriteSeqNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpWriteSeq) }
func BenchmarkFig6WriteRandomInversionCS(b *testing.B) {
	benchOp(b, bench.ConfigInvCS, bench.OpWriteRandom)
}
func BenchmarkFig6WriteRandomNFS(b *testing.B) { benchOp(b, bench.ConfigNFS, bench.OpWriteRandom) }

// Table 3's third column: the single-process (user-defined-function)
// configuration, which the paper shows beating even NFS on most
// operations.

func BenchmarkTable3SPReadSingle(b *testing.B) { benchOp(b, bench.ConfigInvSP, bench.OpReadSingle) }
func BenchmarkTable3SPReadSeq(b *testing.B)    { benchOp(b, bench.ConfigInvSP, bench.OpReadSeq) }
func BenchmarkTable3SPReadRandom(b *testing.B) { benchOp(b, bench.ConfigInvSP, bench.OpReadRandom) }
func BenchmarkTable3SPWriteSingle(b *testing.B) {
	benchOp(b, bench.ConfigInvSP, bench.OpWriteSingle)
}
func BenchmarkTable3SPWriteSeq(b *testing.B) { benchOp(b, bench.ConfigInvSP, bench.OpWriteSeq) }
func BenchmarkTable3SPWriteRandom(b *testing.B) {
	benchOp(b, bench.ConfigInvSP, bench.OpWriteRandom)
}
func BenchmarkTable3SPReadByte(b *testing.B)  { benchOp(b, bench.ConfigInvSP, bench.OpReadByte) }
func BenchmarkTable3SPWriteByte(b *testing.B) { benchOp(b, bench.ConfigInvSP, bench.OpWriteByte) }

// The [STON93] local comparison.

func BenchmarkLocalFFSReadSingle(b *testing.B) {
	benchOp(b, bench.ConfigLocalFS, bench.OpReadSingle)
}
func BenchmarkLocalFFSReadRandom(b *testing.B) {
	benchOp(b, bench.ConfigLocalFS, bench.OpReadRandom)
}

// Ablations.

func BenchmarkAblationCoalescing(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := bench.AblateCoalescing(bench.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		sim += res.Direct.Seconds() - res.Coalesced.Seconds()
	}
	b.ReportMetric(sim/float64(b.N), "sim-s-saved/op")
}

func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblateCompression(bench.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJukeboxCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblateJukeboxCache(bench.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRecoveryVsFsck(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := bench.AblateRecovery(bench.DefaultParams(), 10, 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		speedup += res.SpeedupFactor
	}
	b.ReportMetric(speedup/float64(b.N), "fsck/recovery-x")
}

// Real-time microbenchmarks of the Go implementation itself (no
// simulated costs: all-memory devices).

func newBenchDB(b *testing.B) (*inversion.DB, *inversion.Session) {
	b.Helper()
	db, err := inversion.OpenMemory(inversion.Options{Buffers: 512})
	if err != nil {
		b.Fatal(err)
	}
	return db, db.NewSession("bench")
}

func BenchmarkCoreSequentialWrite(b *testing.B) {
	_, s := newBenchDB(b)
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/w%d", i)
		if err := s.WriteFile(path, data, inversion.CreateOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreSequentialRead(b *testing.B) {
	_, s := newBenchDB(b)
	data := make([]byte, 256<<10)
	if err := s.WriteFile("/r", data, inversion.CreateOpts{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := s.Open("/r")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreRandomReadAt(b *testing.B) {
	_, s := newBenchDB(b)
	const size = 1 << 20
	if err := s.WriteFile("/rr", make([]byte, size), inversion.CreateOpts{}); err != nil {
		b.Fatal(err)
	}
	f, err := s.Open("/rr")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		off := int64(rng>>33) % (size - 4096)
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreCreateUnlink(b *testing.B) {
	_, s := newBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/cu%d", i)
		if err := s.WriteFile(path, []byte("x"), inversion.CreateOpts{}); err != nil {
			b.Fatal(err)
		}
		if err := s.Unlink(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreStat(b *testing.B) {
	_, s := newBenchDB(b)
	if err := s.WriteFile("/st", []byte("x"), inversion.CreateOpts{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Stat("/st"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreQueryScan(b *testing.B) {
	db, s := newBenchDB(b)
	for i := 0; i < 100; i++ {
		if err := s.WriteFile(fmt.Sprintf("/q%d", i), []byte("x"), inversion.CreateOpts{}); err != nil {
			b.Fatal(err)
		}
	}
	eng := inversion.NewQueryEngine(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(s, `retrieve (filename) where size(file) > 0 and not isdir(file)`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 100 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkCoreTimeTravelRead(b *testing.B) {
	db, s := newBenchDB(b)
	for i := 0; i < 10; i++ {
		if err := s.WriteFile("/tt", []byte(fmt.Sprintf("version %d", i)), inversion.CreateOpts{}); err != nil {
			b.Fatal(err)
		}
	}
	asof := db.Manager().LastCommitTime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadFileAsOf("/tt", asof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreCompressedWrite(b *testing.B) {
	_, s := newBenchDB(b)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i / 512)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/cz%d", i)
		if err := s.WriteFile(path, data, inversion.CreateOpts{Flags: inversion.FlagCompressed}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreVacuum(b *testing.B) {
	db, s := newBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 20; j++ {
			if err := s.WriteFile("/v", []byte(fmt.Sprintf("gen %d.%d", i, j)), inversion.CreateOpts{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := db.Vacuum(); err != nil {
			b.Fatal(err)
		}
	}
}
